package vlt

import (
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var updateGolden = flag.Bool("update", false, "rewrite testdata golden files")

// TestGoldenMetrics pins the full registry export for mxm on the base
// machine. The simulator is deterministic, so any drift in this file is
// a real behavior change (new metric, renamed metric, or a timing
// change) and must be reviewed — regenerate with `go test -run
// TestGoldenMetrics -update .`.
func TestGoldenMetrics(t *testing.T) {
	res, err := Run("mxm", MachineBase, Options{})
	if err != nil {
		t.Fatal(err)
	}
	got := res.Metrics.String()
	golden := filepath.Join("testdata", "metrics_base_mxm.golden")
	if *updateGolden {
		if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run with -update to generate)", err)
	}
	if got != string(want) {
		t.Errorf("metrics drifted from %s (regenerate with -update if intended):\ngot:\n%s\nwant:\n%s",
			golden, got, want)
	}
}

// TestMetricsCoverage asserts the machine-readable export carries at
// least 40 metrics and covers every field that used to live only on the
// typed result structs (SUStat, LaneStat, vcl.Utilization, vm.OpStats).
func TestMetricsCoverage(t *testing.T) {
	res, err := Run("mxm", MachineBase, Options{SkipVerify: true})
	if err != nil {
		t.Fatal(err)
	}
	ms := res.Metrics
	if len(ms) < 40 {
		t.Fatalf("export has %d metrics, want >= 40", len(ms))
	}
	// One registry name per legacy typed field.
	for _, name := range []string{
		// SUStat
		"su0.fetch.instrs", "su0.dispatch.instrs", "su0.issue.instrs",
		"su0.retire.instrs", "su0.fetch.stall.branch", "su0.fetch.stall.icache",
		"su0.dispatch.stall.rob", "su0.dispatch.stall.window",
		"su0.dispatch.stall.viq", "su0.bpred.mispredict_pct",
		"su0.l1i.hit_pct", "su0.l1d.hit_pct",
		// vcl.Utilization
		"vcl.util.busy", "vcl.util.part_idle", "vcl.util.stalled",
		"vcl.util.all_idle",
		// vm.OpStats
		"vm.ops.scalar_instrs", "vm.ops.vec_instrs", "vm.ops.vec_elem_ops",
		"vm.ops.pct_vect", "vm.ops.avg_vl",
		// machine-level
		"machine.cycles", "machine.retired", "machine.ipc",
		"machine.opportunity_pct", "l2.bank_stalls", "l2.hit_rate",
	} {
		if _, ok := ms.Get(name); !ok {
			t.Errorf("export missing %q", name)
		}
	}
	// The export must mirror the typed fields exactly.
	if v, _ := ms.Get("machine.cycles"); v != float64(res.Cycles) {
		t.Errorf("machine.cycles %v != Cycles %d", v, res.Cycles)
	}
	if v, _ := ms.Get("machine.retired"); v != float64(res.Retired) {
		t.Errorf("machine.retired %v != Retired %d", v, res.Retired)
	}
	if v, _ := ms.Get("vcl.issued"); v != float64(res.VecIssued) {
		t.Errorf("vcl.issued %v != VecIssued %d", v, res.VecIssued)
	}
	// Sorted by name, lowercase, no spaces.
	for i, m := range ms {
		if i > 0 && ms[i-1].Name >= m.Name {
			t.Errorf("export not strictly sorted at %q >= %q", ms[i-1].Name, m.Name)
		}
		if m.Name != strings.ToLower(m.Name) || strings.ContainsAny(m.Name, " \t") {
			t.Errorf("bad metric name %q", m.Name)
		}
	}
}

// TestLaneCoreMetricsCoverage does the LaneStat half of the coverage
// check on a lane-scalar machine.
func TestLaneCoreMetricsCoverage(t *testing.T) {
	res, err := Run("radix", MachineVLTScalar, Options{SkipVerify: true})
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{
		"lane0.fetch.instrs", "lane0.issue.instrs", "lane0.retire.instrs",
		"lane0.stall.operand", "lane0.stall.mem_port",
		"lane0.bpred.mispredict_pct", "lane0.icache.hit_pct",
		"lane7.retire.instrs",
	} {
		if _, ok := res.Metrics.Get(name); !ok {
			t.Errorf("lane-scalar export missing %q", name)
		}
	}
}
