package vlt

import (
	"strings"
	"testing"
)

// The String renderers are the user-facing output of cmd/vltexp; pin
// their structure with synthetic datasets (no simulation needed).

func TestFigure1DataString(t *testing.T) {
	d := Figure1Data{Rows: []Figure1Row{
		{Workload: "mxm", Speedup: []float64{1, 2, 4, 7.2}},
		{Workload: "ocean", Speedup: []float64{1, 1, 1, 1}},
	}}
	out := d.String()
	for _, want := range []string{"Figure 1", "mxm", "ocean", "7.20", "8 lane(s)"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
}

func TestFigure3DataString(t *testing.T) {
	d := Figure3Data{Rows: []Figure3Row{{Workload: "bt", V2: 1.47, V4: 1.89}}}
	out := d.String()
	for _, want := range []string{"Figure 3", "bt", "1.47", "1.89"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
}

func TestFigure4DataString(t *testing.T) {
	d := Figure4Data{Rows: []Figure4Row{{
		Workload: "trfd",
		Base:     UtilizationCounts{Busy: 10, Stalled: 40, AllIdle: 50},
		V2:       UtilizationCounts{Busy: 10, Stalled: 20, AllIdle: 25},
		V4:       UtilizationCounts{Busy: 10, Stalled: 10, AllIdle: 12},
	}}}
	out := d.String()
	if !strings.Contains(out, "Figure 4") || !strings.Contains(out, "VLT-4") {
		t.Errorf("bad rendering:\n%s", out)
	}
	// Base total normalizes to 100%.
	if !strings.Contains(out, "100.00") {
		t.Errorf("base bar should be 100%%:\n%s", out)
	}
}

func TestFigure5DataString(t *testing.T) {
	d := Figure5Data{Rows: []Figure5Row{{
		Workload: "mpenc",
		Speedup: map[Machine]float64{
			MachineV2SMT: 1.2, MachineV2CMP: 1.4, MachineV4SMT: 1.3,
			MachineV4CMT: 1.55, MachineV4CMP: 1.56, MachineV4CMPh: 1.54,
		},
	}}}
	out := d.String()
	for _, m := range Figure5Configs {
		if !strings.Contains(out, string(m)) {
			t.Errorf("missing column %s:\n%s", m, out)
		}
	}
}

func TestFigure6DataString(t *testing.T) {
	d := Figure6Data{Rows: []Figure6Row{
		{Workload: "radix", VLTOverCMT: 1.47, VLTCycles: 49189, CMTCycles: 72069},
	}}
	out := d.String()
	for _, want := range []string{"Figure 6", "radix", "1.47", "49189"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
}

func TestExtensionDataStrings(t *testing.T) {
	e16 := Ext16Data{Rows: []Ext16Row{{Workload: "bt", SpeedupAt8: 1.68, SpeedupAt16: 1.69}}}
	if out := e16.String(); !strings.Contains(out, "16 lanes") || !strings.Contains(out, "bt") {
		t.Errorf("Ext16Data rendering wrong:\n%s", out)
	}
	er := ExtReclaimData{Rows: []ExtReclaimRow{
		{Workload: "mpenc", CyclesReclaim: 100, CyclesStatic: 110, ReclaimSpeedup: 1.1},
	}}
	if out := er.String(); !strings.Contains(out, "vltcfg") || !strings.Contains(out, "1.10") {
		t.Errorf("ExtReclaimData rendering wrong:\n%s", out)
	}
}

func TestUtilizationCountsTotal(t *testing.T) {
	u := UtilizationCounts{Busy: 1, PartIdle: 2, Stalled: 3, AllIdle: 4}
	if u.Total() != 10 {
		t.Errorf("Total = %d, want 10", u.Total())
	}
}

func TestTable4StringRendering(t *testing.T) {
	s, err := Table4String(1)
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range Workloads() {
		if !strings.Contains(s, w) {
			t.Errorf("Table 4 missing %s", w)
		}
	}
	if !strings.Contains(s, "|") {
		t.Error("Table 4 should render measured | paper pairs")
	}
}

func TestCollectAllAndJSON(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment sweep")
	}
	data, err := MarshalAll(1)
	if err != nil {
		t.Fatal(err)
	}
	s := string(data)
	for _, want := range []string{
		`"table2"`, `"figure6"`, `"extensionPhaseSwitching"`,
		`"Workload": "mxm"`, `"Config": "V4-CMT"`,
	} {
		if !strings.Contains(s, want) {
			t.Errorf("JSON export missing %q", want)
		}
	}
}
