package vlt

import (
	"errors"
	"testing"

	"vlt/internal/guard"
	"vlt/internal/runner"
)

// TestEngineIsolatesPanickingCell: a panic inside one cell's simulation
// fails only that cell, with a typed error naming it; sibling cells and
// the engine survive.
func TestEngineIsolatesPanickingCell(t *testing.T) {
	orig := simulateCell
	defer func() { simulateCell = orig }()
	simulateCell = func(workload string, m Machine, opt Options) (Result, UtilizationCounts, error) {
		if workload == "poison" {
			panic("injected cell panic")
		}
		return orig(workload, m, opt)
	}

	for _, jobs := range []int{1, 2} { // serial and parallel paths
		eng := NewEngine(jobs)
		bad := eng.submit("poison", MachineBase, Options{})
		good := eng.submit("mxm", MachineBase, Options{SkipVerify: true})

		_, _, err := bad.wait()
		var pe *runner.PanicError
		if !errors.As(err, &pe) {
			t.Fatalf("jobs=%d: want *runner.PanicError, got %T: %v", jobs, err, err)
		}
		if pe.Key != "poison/base" {
			t.Errorf("jobs=%d: panic names cell %q, want poison/base", jobs, pe.Key)
		}
		if len(pe.Stack) == 0 {
			t.Errorf("jobs=%d: panic carries no stack", jobs)
		}
		res, _, err := good.wait()
		if err != nil || res.Cycles == 0 {
			t.Errorf("jobs=%d: sibling cell broken by panic: %v (cycles %d)", jobs, err, res.Cycles)
		}
	}
}

// TestEngineSetGuardAppliesToCells: SetGuard's stall limit reaches every
// cell the engine simulates.
func TestEngineSetGuardAppliesToCells(t *testing.T) {
	eng := NewEngine(1)
	eng.SetGuard(2, AuditOff) // 2 cycles without retirement: trips in the cold start
	_, _, err := eng.submit("mxm", MachineBase, Options{SkipVerify: true}).wait()
	var stall *guard.StallError
	if !errors.As(err, &stall) {
		t.Fatalf("want *guard.StallError, got %T: %v", err, err)
	}
	if stall.Limit != 2 {
		t.Errorf("stall limit %d reached the cell, want 2", stall.Limit)
	}
}
