package vlt

import (
	"reflect"
	"testing"
)

// TestParallelMatchesSerial is the engine's differential regression: the
// parallel memoized engine must produce results identical to the legacy
// serial path for every figure, table and extension study. Any data race
// or cross-run state leak in the simulator would show up here (and under
// -race).
func TestParallelMatchesSerial(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment sweep")
	}
	serial := NewEngine(1)
	parallel := NewEngine(4)
	if !serial.Serial() || parallel.Serial() {
		t.Fatalf("NewEngine mode selection broken: serial=%v parallel=%v",
			serial.Serial(), parallel.Serial())
	}
	want, err := serial.CollectAll(1)
	if err != nil {
		t.Fatal(err)
	}
	got, err := parallel.CollectAll(1)
	if err != nil {
		t.Fatal(err)
	}
	for _, cmp := range []struct {
		name      string
		got, want any
	}{
		{"table4", got.Table4, want.Table4},
		{"figure1", got.Figure1, want.Figure1},
		{"figure3", got.Figure3, want.Figure3},
		{"figure4", got.Figure4, want.Figure4},
		{"figure5", got.Figure5, want.Figure5},
		{"figure6", got.Figure6, want.Figure6},
		{"extension16Lanes", got.Extension16Lanes, want.Extension16Lanes},
		{"extensionPhaseSwitching", got.ExtensionPhaseSwtch, want.ExtensionPhaseSwtch},
	} {
		if !reflect.DeepEqual(cmp.got, cmp.want) {
			t.Errorf("%s: parallel engine diverges from serial path\nparallel: %+v\nserial:   %+v",
				cmp.name, cmp.got, cmp.want)
		}
	}
}

// TestEngineDedup checks the memoization contract: duplicate (workload,
// config, options) cells are simulated exactly once per engine, and the
// full sweep genuinely shares cells across figures (e.g. each workload's
// base-machine run is requested by Figures 1, 3, 4, 5 and Table 4).
func TestEngineDedup(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment sweep")
	}
	eng := NewEngine(2)
	if _, err := eng.CollectAll(1); err != nil {
		t.Fatal(err)
	}
	st := eng.Stats()
	if st.Hits == 0 {
		t.Errorf("full sweep produced no cache hits (%+v); figures share base runs", st)
	}
	if st.Unique+st.Hits != st.Submitted {
		t.Errorf("stats inconsistent: %+v", st)
	}
	// A repeated figure re-submits only cached cells: no new simulations.
	unique := st.Unique
	if _, err := eng.Figure3(1); err != nil {
		t.Fatal(err)
	}
	if got := eng.Stats().Unique; got != unique {
		t.Errorf("repeating Figure3 simulated %d new cells, want 0", got-unique)
	}
}

// TestEngineAliasedCells: option spellings that resolve to the same
// machine configuration (Lanes: 0 defaults to 8 on the base machine)
// must coalesce onto one cached cell.
func TestEngineAliasedCells(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation")
	}
	eng := NewEngine(2)
	a := eng.submit("bt", MachineBase, Options{Scale: 1})
	b := eng.submit("bt", MachineBase, Options{Scale: 1, Lanes: 8})
	ra, _, err := a.wait()
	if err != nil {
		t.Fatal(err)
	}
	rb, _, err := b.wait()
	if err != nil {
		t.Fatal(err)
	}
	if st := eng.Stats(); st.Unique != 1 || st.Hits != 1 {
		t.Errorf("aliased options did not coalesce: %+v", st)
	}
	if ra.Cycles != rb.Cycles {
		t.Errorf("aliased cells disagree: %d vs %d cycles", ra.Cycles, rb.Cycles)
	}
}

// TestEngineErrorPropagation: a bad cell surfaces its error through the
// drivers with the legacy message shape, in both modes.
func TestEngineErrorPropagation(t *testing.T) {
	for _, jobs := range []int{1, 4} {
		eng := NewEngine(jobs)
		f := eng.submit("nosuch", MachineBase, Options{Scale: 1})
		if _, _, err := f.wait(); err == nil {
			t.Errorf("jobs=%d: unknown workload did not error", jobs)
		}
		g := eng.submit("mxm", Machine("bogus"), Options{Scale: 1})
		if _, _, err := g.wait(); err == nil {
			t.Errorf("jobs=%d: unknown machine did not error", jobs)
		}
	}
}

// TestEngineProgress: the progress callback sees every unique cell
// complete, in both modes.
func TestEngineProgress(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation")
	}
	for _, jobs := range []int{1, 2} {
		eng := NewEngine(jobs)
		ch := make(chan [2]int, 64)
		eng.SetProgress(func(done, total int) { ch <- [2]int{done, total} })
		if _, err := eng.Figure6(1); err != nil {
			t.Fatal(err)
		}
		close(ch)
		// Concurrent callbacks may be observed out of order; check the
		// update count and the high-water marks instead of the last value.
		var maxDone, maxTotal, n int
		for p := range ch {
			maxDone = max(maxDone, p[0])
			maxTotal = max(maxTotal, p[1])
			n++
		}
		// Figure 6: 3 scalar workloads x 2 machines = 6 unique cells.
		if n != 6 || maxDone != 6 || maxTotal != 6 {
			t.Errorf("jobs=%d: progress saw %d updates, max %d/%d; want 6 updates reaching 6/6", jobs, n, maxDone, maxTotal)
		}
	}
}
