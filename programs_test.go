package vlt

import (
	"math"
	"os"
	"path/filepath"
	"testing"

	"vlt/internal/asm"
	"vlt/internal/core"
)

// The example assembly programs under examples/programs are part of the
// public toolchain surface; assemble and run each and check its output.

func runVasm(t *testing.T, path string, cfg core.Config) (*core.Machine, *asm.Program) {
	t.Helper()
	src, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	prog, err := asm.ParseText(path, string(src))
	if err != nil {
		t.Fatal(err)
	}
	m, err := core.NewMachine(cfg, prog)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Run(); err != nil {
		t.Fatal(err)
	}
	return m, prog
}

func TestExampleProgramFibonacci(t *testing.T) {
	m, prog := runVasm(t, filepath.Join("examples", "programs", "fibonacci.vasm"), core.Base(8))
	want := []uint64{0, 1, 1, 2, 3, 5, 8, 13, 21, 34, 55, 89, 144, 233, 377, 610}
	out := prog.Symbol("out")
	for i, w := range want {
		if got := m.VM().Mem.MustRead(out + uint64(i)*8); got != w {
			t.Errorf("fib[%d] = %d, want %d", i, got, w)
		}
	}
}

func TestExampleProgramDotProduct(t *testing.T) {
	m, prog := runVasm(t, filepath.Join("examples", "programs", "dotproduct.vasm"), core.Base(8))
	x := []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16}
	y := []float64{1, 1, 2, 2, 3, 3, 4, 4, 5, 5, 6, 6, 7, 7, 8, 8}
	want := 0.0
	for i := range x {
		want += x[i] * y[i]
	}
	got := math.Float64frombits(m.VM().Mem.MustRead(prog.Symbol("out")))
	if got != want {
		t.Errorf("dot product = %v, want %v", got, want)
	}
}

func TestExampleProgramParallelSum(t *testing.T) {
	for _, tc := range []struct {
		cfg     core.Config
		threads int
	}{
		{core.Base(8), 1},
		{core.V2CMP(), 2},
		{core.V4CMT(), 4},
	} {
		cfg := tc.cfg
		cfg.NumThreads = tc.threads
		if cfg.Lanes > 0 {
			cfg.InitialPartitions = tc.threads
		}
		m, prog := runVasm(t, filepath.Join("examples", "programs", "parallelsum.vasm"), cfg)
		if got := m.VM().Mem.MustRead(prog.Symbol("total")); got != 528 {
			t.Errorf("%s: parallel sum = %d, want 528", cfg.Name, got)
		}
	}
}

func TestExampleProgramsAssembleToImagesAndBack(t *testing.T) {
	files, err := filepath.Glob(filepath.Join("examples", "programs", "*.vasm"))
	if err != nil || len(files) == 0 {
		t.Fatalf("no example programs found: %v", err)
	}
	for _, f := range files {
		src, err := os.ReadFile(f)
		if err != nil {
			t.Fatal(err)
		}
		prog, err := asm.ParseText(f, string(src))
		if err != nil {
			t.Fatalf("%s: %v", f, err)
		}
		img := prog.SaveImage()
		back, err := asm.LoadImage(img)
		if err != nil {
			t.Fatalf("%s: image round trip: %v", f, err)
		}
		if len(back.Code) != len(prog.Code) {
			t.Errorf("%s: image round trip lost instructions", f)
		}
	}
}
