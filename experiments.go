package vlt

import (
	"fmt"

	"vlt/internal/area"
	"vlt/internal/report"
	"vlt/internal/scalar"
	"vlt/internal/workloads"
)

// This file regenerates every table and figure of the paper's evaluation.
// Absolute cycle counts come from this repository's simulator, not the
// authors' testbed, so the claims being reproduced are the shapes: who
// wins, by roughly what factor, and where the crossovers fall. See
// EXPERIMENTS.md for the paper-versus-measured record.

// Figure1Lanes are the lane counts swept by Figure 1.
var Figure1Lanes = []int{1, 2, 4, 8}

// Figure1Row is one workload's lane-scaling curve.
type Figure1Row struct {
	Workload string
	// Speedup[i] is cycles(1 lane)/cycles(Figure1Lanes[i]).
	Speedup []float64
}

// Figure1Data is the full Figure 1 dataset.
type Figure1Data struct {
	Rows []Figure1Row
}

// Figure1 sweeps the base processor's lane count from 1 to 8 for all nine
// applications (paper Figure 1) on the DefaultEngine.
func Figure1(scale int) (Figure1Data, error) { return DefaultEngine.Figure1(scale) }

// Figure1 sweeps the base processor's lane count from 1 to 8 for all nine
// applications (paper Figure 1).
func (e *Engine) Figure1(scale int) (Figure1Data, error) {
	ws := workloads.All()
	futs := make([][]*cellFuture, len(ws))
	for i, w := range ws {
		for _, lanes := range Figure1Lanes {
			futs[i] = append(futs[i], e.submit(w.Name, MachineBase, Options{Scale: scale, Lanes: lanes}))
		}
	}
	var data Figure1Data
	for i, w := range ws {
		row := Figure1Row{Workload: w.Name}
		var base uint64
		for j, lanes := range Figure1Lanes {
			res, _, err := futs[i][j].wait()
			if err != nil {
				return data, fmt.Errorf("figure 1 (%s, %d lanes): %w", w.Name, lanes, err)
			}
			if lanes == 1 {
				base = res.Cycles
			}
			row.Speedup = append(row.Speedup, float64(base)/float64(res.Cycles))
		}
		data.Rows = append(data.Rows, row)
	}
	return data, nil
}

// String renders Figure 1 as a table.
func (d Figure1Data) String() string {
	hdr := []string{"workload"}
	for _, l := range Figure1Lanes {
		hdr = append(hdr, fmt.Sprintf("%d lane(s)", l))
	}
	t := report.NewTable("Figure 1: speedup vs number of vector lanes (base processor)", hdr...)
	for _, r := range d.Rows {
		cells := []any{r.Workload}
		for _, s := range r.Speedup {
			cells = append(cells, s)
		}
		t.Row(cells...)
	}
	return t.String()
}

// Figure3Row is one workload's VLT speedup with 2 and 4 vector threads.
type Figure3Row struct {
	Workload string
	V2, V4   float64 // speedup over the 8-lane base processor
}

// Figure3Data is the full Figure 3 dataset.
type Figure3Data struct {
	Rows []Figure3Row
}

// Figure3 measures the VLT speedup of the short-vector workloads with 2
// threads (V2-CMP) and 4 threads (V4-CMP) over the base processor (paper
// Figure 3) on the DefaultEngine.
func Figure3(scale int) (Figure3Data, error) { return DefaultEngine.Figure3(scale) }

// Figure3 measures the VLT speedup of the short-vector workloads with 2
// threads (V2-CMP) and 4 threads (V4-CMP) over the base processor (paper
// Figure 3).
func (e *Engine) Figure3(scale int) (Figure3Data, error) {
	ws := workloads.ShortVectorSet()
	type rowFuts struct{ base, v2, v4 *cellFuture }
	futs := make([]rowFuts, len(ws))
	for i, w := range ws {
		futs[i] = rowFuts{
			base: e.submit(w.Name, MachineBase, Options{Scale: scale}),
			v2:   e.submit(w.Name, MachineV2CMP, Options{Scale: scale}),
			v4:   e.submit(w.Name, MachineV4CMP, Options{Scale: scale}),
		}
	}
	var data Figure3Data
	for i, w := range ws {
		base, _, err := futs[i].base.wait()
		if err != nil {
			return data, fmt.Errorf("figure 3 (%s base): %w", w.Name, err)
		}
		v2, _, err := futs[i].v2.wait()
		if err != nil {
			return data, fmt.Errorf("figure 3 (%s V2): %w", w.Name, err)
		}
		v4, _, err := futs[i].v4.wait()
		if err != nil {
			return data, fmt.Errorf("figure 3 (%s V4): %w", w.Name, err)
		}
		data.Rows = append(data.Rows, Figure3Row{
			Workload: w.Name,
			V2:       float64(base.Cycles) / float64(v2.Cycles),
			V4:       float64(base.Cycles) / float64(v4.Cycles),
		})
	}
	return data, nil
}

// String renders Figure 3 as a table.
func (d Figure3Data) String() string {
	t := report.NewTable("Figure 3: VLT speedup over base (vector threads)",
		"workload", "VLT-2 threads", "VLT-4 threads")
	for _, r := range d.Rows {
		t.Row(r.Workload, r.V2, r.V4)
	}
	return t.String()
}

// UtilizationCounts is the Figure-4 datapath-cycle census in absolute
// datapath-cycles.
type UtilizationCounts struct {
	Busy, PartIdle, Stalled, AllIdle uint64
}

// Total returns the sum of all categories.
func (u UtilizationCounts) Total() uint64 { return u.Busy + u.PartIdle + u.Stalled + u.AllIdle }

// Figure4Row is one workload's utilization breakdown on the base, VLT-2
// and VLT-4 machines, in datapath-cycles (normalize by Base.Total() to
// reproduce the paper's bars).
type Figure4Row struct {
	Workload       string
	Base, V2, V4   UtilizationCounts
	BaseCyc, V2Cyc uint64
	V4Cyc          uint64
}

// Figure4Data is the full Figure 4 dataset.
type Figure4Data struct {
	Rows []Figure4Row
}

// Figure4 measures the arithmetic-datapath utilization breakdown (busy /
// partly idle / stalled / all idle) of the short-vector workloads on the
// base and VLT configurations (paper Figure 4) on the DefaultEngine.
func Figure4(scale int) (Figure4Data, error) { return DefaultEngine.Figure4(scale) }

// Figure4 measures the arithmetic-datapath utilization breakdown (busy /
// partly idle / stalled / all idle) of the short-vector workloads on the
// base and VLT configurations (paper Figure 4).
func (e *Engine) Figure4(scale int) (Figure4Data, error) {
	ws := workloads.ShortVectorSet()
	figure4Machines := []Machine{MachineBase, MachineV2CMP, MachineV4CMP}
	futs := make([][]*cellFuture, len(ws))
	for i, w := range ws {
		for _, m := range figure4Machines {
			futs[i] = append(futs[i], e.submit(w.Name, m, Options{Scale: scale}))
		}
	}
	var data Figure4Data
	for i, w := range ws {
		row := Figure4Row{Workload: w.Name}
		for j, cfg := range []struct {
			m    Machine
			dst  *UtilizationCounts
			cycs *uint64
		}{
			{MachineBase, &row.Base, &row.BaseCyc},
			{MachineV2CMP, &row.V2, &row.V2Cyc},
			{MachineV4CMP, &row.V4, &row.V4Cyc},
		} {
			res, raw, err := futs[i][j].wait()
			if err != nil {
				return data, fmt.Errorf("figure 4 (%s, %s): %w", w.Name, cfg.m, err)
			}
			*cfg.dst = raw
			*cfg.cycs = res.Cycles
		}
		data.Rows = append(data.Rows, row)
	}
	return data, nil
}

// String renders Figure 4 as a table of percentages of the base total
// (lower total = faster execution, as in the paper).
func (d Figure4Data) String() string {
	t := report.NewTable(
		"Figure 4: datapath utilization normalized to base execution (percent of base datapath-cycles)",
		"workload", "config", "busy", "partly idle", "stalled", "all idle", "total")
	for _, r := range d.Rows {
		baseTotal := float64(r.Base.Total())
		add := func(name string, u UtilizationCounts) {
			t.Row(r.Workload, name,
				100*float64(u.Busy)/baseTotal,
				100*float64(u.PartIdle)/baseTotal,
				100*float64(u.Stalled)/baseTotal,
				100*float64(u.AllIdle)/baseTotal,
				100*float64(u.Total())/baseTotal)
		}
		add("base", r.Base)
		add("VLT-2", r.V2)
		add("VLT-4", r.V4)
	}
	return t.String()
}

// Figure5Configs are the scalar-unit design points evaluated by Figure 5.
var Figure5Configs = []Machine{
	MachineV2SMT, MachineV2CMP, MachineV4SMT, MachineV4CMT, MachineV4CMP, MachineV4CMPh,
}

// Figure5Row is one workload's speedup under every Figure-5 configuration.
type Figure5Row struct {
	Workload string
	Speedup  map[Machine]float64 // over the base processor
}

// Figure5Data is the full Figure 5 dataset.
type Figure5Data struct {
	Rows []Figure5Row
}

// Figure5 evaluates the scalar-unit design space for vector threads
// (paper Figure 5) on the DefaultEngine.
func Figure5(scale int) (Figure5Data, error) { return DefaultEngine.Figure5(scale) }

// Figure5 evaluates the scalar-unit design space for vector threads
// (paper Figure 5): multiplexed (SMT), replicated (CMP), hybrid (CMT) and
// heterogeneous (CMP-h) scalar units.
func (e *Engine) Figure5(scale int) (Figure5Data, error) {
	ws := workloads.ShortVectorSet()
	type rowFuts struct {
		base *cellFuture
		cfgs []*cellFuture
	}
	futs := make([]rowFuts, len(ws))
	for i, w := range ws {
		futs[i].base = e.submit(w.Name, MachineBase, Options{Scale: scale})
		for _, m := range Figure5Configs {
			futs[i].cfgs = append(futs[i].cfgs, e.submit(w.Name, m, Options{Scale: scale}))
		}
	}
	var data Figure5Data
	for i, w := range ws {
		base, _, err := futs[i].base.wait()
		if err != nil {
			return data, fmt.Errorf("figure 5 (%s base): %w", w.Name, err)
		}
		row := Figure5Row{Workload: w.Name, Speedup: map[Machine]float64{}}
		for j, m := range Figure5Configs {
			res, _, err := futs[i].cfgs[j].wait()
			if err != nil {
				return data, fmt.Errorf("figure 5 (%s, %s): %w", w.Name, m, err)
			}
			row.Speedup[m] = float64(base.Cycles) / float64(res.Cycles)
		}
		data.Rows = append(data.Rows, row)
	}
	return data, nil
}

// String renders Figure 5 as a table.
func (d Figure5Data) String() string {
	hdr := []string{"workload"}
	for _, m := range Figure5Configs {
		hdr = append(hdr, string(m))
	}
	t := report.NewTable("Figure 5: VLT design space, speedup over base", hdr...)
	for _, r := range d.Rows {
		cells := []any{r.Workload}
		for _, m := range Figure5Configs {
			cells = append(cells, r.Speedup[m])
		}
		t.Row(cells...)
	}
	return t.String()
}

// Figure6Row is one scalar workload's VLT-versus-CMT comparison.
type Figure6Row struct {
	Workload   string
	VLTOverCMT float64 // CMT cycles / VLT-scalar cycles
	VLTCycles  uint64
	CMTCycles  uint64
}

// Figure6Data is the full Figure 6 dataset.
type Figure6Data struct {
	Rows []Figure6Row
}

// Figure6 compares 8 VLT scalar threads on the vector lanes against 4
// threads on the CMT baseline for the non-vectorizable workloads (paper
// Figure 6) on the DefaultEngine.
func Figure6(scale int) (Figure6Data, error) { return DefaultEngine.Figure6(scale) }

// Figure6 compares 8 VLT scalar threads on the vector lanes against 4
// threads on the CMT baseline (two 4-way SMT-2 cores) for the
// non-vectorizable workloads (paper Figure 6).
func (e *Engine) Figure6(scale int) (Figure6Data, error) {
	ws := workloads.ScalarSet()
	type rowFuts struct{ vlt, cmt *cellFuture }
	futs := make([]rowFuts, len(ws))
	for i, w := range ws {
		futs[i] = rowFuts{
			vlt: e.submit(w.Name, MachineVLTScalar, Options{Scale: scale}),
			cmt: e.submit(w.Name, MachineCMT, Options{Scale: scale}),
		}
	}
	var data Figure6Data
	for i, w := range ws {
		vltRes, _, err := futs[i].vlt.wait()
		if err != nil {
			return data, fmt.Errorf("figure 6 (%s VLT): %w", w.Name, err)
		}
		cmtRes, _, err := futs[i].cmt.wait()
		if err != nil {
			return data, fmt.Errorf("figure 6 (%s CMT): %w", w.Name, err)
		}
		data.Rows = append(data.Rows, Figure6Row{
			Workload:   w.Name,
			VLTOverCMT: float64(cmtRes.Cycles) / float64(vltRes.Cycles),
			VLTCycles:  vltRes.Cycles,
			CMTCycles:  cmtRes.Cycles,
		})
	}
	return data, nil
}

// String renders Figure 6 as a table.
func (d Figure6Data) String() string {
	t := report.NewTable(
		"Figure 6: 8 VLT scalar threads on lanes vs 4 threads on CMT (relative performance)",
		"workload", "VLT/CMT", "VLT cycles", "CMT cycles")
	for _, r := range d.Rows {
		t.Row(r.Workload, r.VLTOverCMT, r.VLTCycles, r.CMTCycles)
	}
	return t.String()
}

// Table1Row is one component-area entry (paper Table 1).
type Table1Row struct {
	Component string
	AreaMM2   float64
}

// Table1 returns the component area estimates (0.10 µm CMOS).
func Table1() []Table1Row {
	return []Table1Row{
		{"2-way scalar unit + L1 caches", area.SU2Way},
		{"4-way scalar unit + L1 caches", area.SU4Way},
		{"2-way VCL", area.VCL2Way},
		{"Vector lane", area.VectorLane},
		{"L2 cache (4MB)", area.L2Cache4MB},
		{"Base vector processor (4-way SU, 8 vector lanes)", area.Base()},
	}
}

// Table1String renders Table 1.
func Table1String() string {
	t := report.NewTable("Table 1: area breakdown for vector processor components",
		"component", "area (mm^2)")
	for _, r := range Table1() {
		t.Row(r.Component, r.AreaMM2)
	}
	return t.String()
}

// Table2Row is one VLT configuration's area overhead (paper Table 2).
type Table2Row struct {
	Config      string
	Description string
	OverheadPct float64
}

// Table2 returns the area overhead of each VLT configuration over the
// base vector processor.
func Table2() []Table2Row {
	desc := map[string]string{
		"V2-SMT":   "2 VLT threads, 1 SMT SU",
		"V4-SMT":   "4 VLT threads, 1 SMT SU",
		"V2-CMP":   "2 VLT threads, 2 SUs",
		"V2-CMP-h": "2 VLT threads, 2 heter. SUs",
		"V4-CMP":   "4 VLT threads, 4 SUs",
		"V4-CMP-h": "4 VLT threads, 4 heter. SUs",
		"V4-CMT":   "4 VLT threads, 2 SMT SUs",
	}
	var out []Table2Row
	for _, c := range area.Table2() {
		out = append(out, Table2Row{Config: c.Name, Description: desc[c.Name], OverheadPct: c.OverheadPct()})
	}
	return out
}

// Table2String renders Table 2.
func Table2String() string {
	t := report.NewTable("Table 2: percentage area increase over the base vector processor",
		"config", "description", "% area increase")
	for _, r := range Table2() {
		t.Row(r.Config, r.Description, r.OverheadPct)
	}
	return t.String()
}

// Table3String renders the base machine parameters (paper Table 3).
func Table3String() string {
	su := scalar.Config4Way()
	t := report.NewTable("Table 3: base vector processor parameters", "component", "parameters")
	t.Row("Scalar unit", fmt.Sprintf("%d-way OoO, %d-entry window/ROB, %d ALUs, %d mem ports",
		su.Width, su.WindowSize, su.NumALU, su.NumMemPorts))
	t.Row("L1 caches", "16-KByte, 2-way associative")
	t.Row("Vector control", "2-way issue, 32-entry VIQ, 32-entry vector window")
	t.Row("Vector lanes", "8 lanes, 3 arithmetic units, 2 memory ports, 64 phys vregs")
	t.Row("Memory system", "4-MByte L2, 4-way assoc, 16 banks, 10-cycle hit, 100-cycle miss")
	return t.String()
}

// Table4Row is one workload's measured characterization next to the
// paper's published values.
type Table4Row struct {
	Workload string
	Class    string

	MeasuredPercentVect float64
	PaperPercentVect    float64
	MeasuredAvgVL       float64
	PaperAvgVL          float64
	MeasuredCommonVLs   []int
	PaperCommonVLs      []int
	MeasuredOppPct      float64
	PaperOppPct         float64
}

// Table4 measures each workload's operation census and VLT opportunity on
// the base processor (via the DefaultEngine) and pairs it with the
// paper's Table 4.
func Table4(scale int) ([]Table4Row, error) { return DefaultEngine.Table4(scale) }

// Table4 measures each workload's operation census and VLT opportunity on
// the base processor and pairs it with the paper's Table 4.
func (e *Engine) Table4(scale int) ([]Table4Row, error) {
	ws := workloads.All()
	futs := make([]*cellFuture, len(ws))
	for i, w := range ws {
		futs[i] = e.submit(w.Name, MachineBase, Options{Scale: scale})
	}
	var out []Table4Row
	for i, w := range ws {
		res, _, err := futs[i].wait()
		if err != nil {
			return nil, fmt.Errorf("table 4 (%s): %w", w.Name, err)
		}
		out = append(out, Table4Row{
			Workload:            w.Name,
			Class:               w.Class.String(),
			MeasuredPercentVect: res.PercentVect,
			PaperPercentVect:    w.Paper.PercentVect,
			MeasuredAvgVL:       res.AvgVL,
			PaperAvgVL:          w.Paper.AvgVL,
			MeasuredCommonVLs:   res.CommonVLs,
			PaperCommonVLs:      w.Paper.CommonVLs,
			MeasuredOppPct:      res.OpportunityPct,
			PaperOppPct:         w.Paper.OpportunityPct,
		})
	}
	return out, nil
}

// Table4String renders Table 4 (measured vs paper) on the DefaultEngine.
func Table4String(scale int) (string, error) { return DefaultEngine.Table4String(scale) }

// Table4String renders Table 4 (measured vs paper).
func (e *Engine) Table4String(scale int) (string, error) {
	rows, err := e.Table4(scale)
	if err != nil {
		return "", err
	}
	t := report.NewTable("Table 4: application characteristics (measured | paper)",
		"workload", "%vect", "avg VL", "common VLs", "%opportunity")
	for _, r := range rows {
		t.Row(r.Workload,
			fmt.Sprintf("%.0f | %.0f", r.MeasuredPercentVect, r.PaperPercentVect),
			fmt.Sprintf("%.1f | %.1f", r.MeasuredAvgVL, r.PaperAvgVL),
			fmt.Sprintf("%v | %v", r.MeasuredCommonVLs, r.PaperCommonVLs),
			fmt.Sprintf("%.0f | %.0f", r.MeasuredOppPct, r.PaperOppPct))
	}
	return t.String(), nil
}
