// Videoencode walks the paper's motivating scenario: a video encoder with
// mixed data-level and thread-level parallelism. It characterizes the
// workload (Table 4 style), shows why lanes alone do not help (Figure 1),
// and then sweeps the VLT design space for it (Figures 3 and 5),
// including the area price of each configuration (Table 2).
package main

import (
	"fmt"
	"log"

	"vlt"
)

func main() {
	// 1. Characterize the workload on the base 8-lane processor.
	base, err := vlt.Run("mpenc", vlt.MachineBase, vlt.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("== mpenc: video encoding on an 8-lane vector processor ==")
	fmt.Printf("vectorized operations: %.0f%%   average vector length: %.1f (common: %v)\n",
		base.PercentVect, base.AvgVL, base.CommonVLs)
	fmt.Printf("VLT opportunity: %.0f%% of execution is threadable\n\n", base.OpportunityPct)

	// 2. Adding lanes does not help an application with VL ~11.
	fmt.Println("-- scaling lanes (single thread) --")
	var oneLane uint64
	for _, lanes := range []int{1, 2, 4, 8} {
		r, err := vlt.Run("mpenc", vlt.MachineBase, vlt.Options{Lanes: lanes})
		if err != nil {
			log.Fatal(err)
		}
		if lanes == 1 {
			oneLane = r.Cycles
		}
		fmt.Printf("%d lane(s): %8d cycles  (%.2fx vs 1 lane)\n",
			lanes, r.Cycles, float64(oneLane)/float64(r.Cycles))
	}

	// 3. VLT turns the idle lanes into thread slots.
	fmt.Println("\n-- VLT design space (speedup over 8-lane base, area over base) --")
	areas := map[vlt.Machine]float64{}
	for _, row := range vlt.Table2() {
		areas[vlt.Machine(row.Config)] = row.OverheadPct
	}
	for _, m := range []vlt.Machine{
		vlt.MachineV2SMT, vlt.MachineV2CMP,
		vlt.MachineV4SMT, vlt.MachineV4CMT, vlt.MachineV4CMP,
	} {
		r, err := vlt.Run("mpenc", m, vlt.Options{})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-9s: %.2fx speedup at +%.1f%% area\n",
			m, float64(base.Cycles)/float64(r.Cycles), areas[m])
	}
	fmt.Println("\nthe hybrid V4-CMT matches the fully replicated V4-CMP at a third of its area cost")
}
