// Lanesweep regenerates the paper's Figure 1 motivation: scaling the
// vector lane count from 1 to 8 helps long-vector applications almost
// linearly, does little for short-vector codes, and nothing at all for
// non-vectorizable ones — the underutilization Vector Lane Threading
// reclaims.
package main

import (
	"fmt"
	"log"
	"strings"

	"vlt"
)

func main() {
	data, err := vlt.Figure1(1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("speedup vs lane count (base vector processor, single thread)")
	fmt.Printf("%-10s", "workload")
	for _, l := range vlt.Figure1Lanes {
		fmt.Printf("  %7s", fmt.Sprintf("%dL", l))
	}
	fmt.Println("  profile")
	for _, row := range data.Rows {
		fmt.Printf("%-10s", row.Workload)
		for _, s := range row.Speedup {
			fmt.Printf("  %7.2f", s)
		}
		final := row.Speedup[len(row.Speedup)-1]
		bar := strings.Repeat("#", int(final*4))
		fmt.Printf("  %s\n", bar)
	}
	fmt.Println("\nlong vectors scale; short vectors flatten; scalar code is immune to lanes")
}
