// Sortcompare reproduces the paper's Section 7.2 scenario: a parallel
// radix sort that does not vectorize. It runs 8 scalar threads on the
// vector lanes (each lane re-engineered as a 2-way in-order core) against
// 4 threads on the CMT baseline — the same silicon minus the vector unit.
package main

import (
	"fmt"
	"log"

	"vlt"
)

func main() {
	fmt.Println("== radix sort: scalar threads on vector lanes vs CMT ==")
	for _, w := range []string{"radix", "ocean", "barnes"} {
		vltRes, err := vlt.Run(w, vlt.MachineVLTScalar, vlt.Options{})
		if err != nil {
			log.Fatal(err)
		}
		cmtRes, err := vlt.Run(w, vlt.MachineCMT, vlt.Options{})
		if err != nil {
			log.Fatal(err)
		}
		ratio := float64(cmtRes.Cycles) / float64(vltRes.Cycles)
		verdict := "VLT and CMT are on par"
		if ratio > 1.2 {
			verdict = "VLT wins: more thread slots beat wider cores"
		} else if ratio < 0.8 {
			verdict = "CMT wins: the workload needs wide out-of-order cores"
		}
		fmt.Printf("%-7s  8 lane-threads: %8d cycles   4 CMT threads: %8d cycles   VLT/CMT %.2fx  (%s)\n",
			w, vltRes.Cycles, cmtRes.Cycles, ratio, verdict)
		if !vltRes.Verified || !cmtRes.Verified {
			log.Fatalf("%s: results not verified", w)
		}
	}
	fmt.Println("\nall runs verified against host-side reference implementations")
}
