// Quickstart: run one short-vector workload on the base vector processor
// and on a VLT configuration, and print the speedup — the paper's core
// claim in a dozen lines.
package main

import (
	"fmt"
	"log"

	"vlt"
)

func main() {
	base, err := vlt.Run("mpenc", vlt.MachineBase, vlt.Options{})
	if err != nil {
		log.Fatal(err)
	}
	v4, err := vlt.Run("mpenc", vlt.MachineV4CMT, vlt.Options{})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("mpenc on %-10s: %8d cycles (avg VL %.1f, %.0f%% vectorized)\n",
		base.Machine, base.Cycles, base.AvgVL, base.PercentVect)
	fmt.Printf("mpenc on %-10s: %8d cycles (4 vector threads, 2 lanes each)\n",
		v4.Machine, v4.Cycles)
	fmt.Printf("VLT speedup: %.2fx (results verified: %v)\n",
		float64(base.Cycles)/float64(v4.Cycles), base.Verified && v4.Verified)
}
