package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"runtime/debug"
	"strings"
	"syscall"
	"time"

	"vlt/internal/fleet"
	"vlt/internal/report"
	"vlt/internal/runner"
	"vlt/internal/serve"
	"vlt/internal/store"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// signalNotify is indirect so the smoke test can inject a fake signal
// instead of signalling the test process.
var signalNotify = signal.Notify

// run is the testable entry point: it parses args, serves until a
// termination signal, and returns the process exit code.
func run(args []string, stdout, stderr io.Writer) (code int) {
	defer func() {
		if r := recover(); r != nil {
			fmt.Fprint(stderr, report.Diagnose("vltd",
				&runner.PanicError{Key: "vltd", Value: r, Stack: debug.Stack()}))
			code = 1
		}
	}()

	fs := flag.NewFlagSet("vltd", flag.ContinueOnError)
	fs.SetOutput(stderr)
	addr := fs.String("addr", "127.0.0.1:8317", "listen address (host:port; port 0 picks a free port)")
	jobs := fs.Int("jobs", 0, "max concurrent simulations (0 = GOMAXPROCS)")
	pending := fs.Int("pending", 0, "max distinct requests in flight before shedding 429s (0 = 4x jobs)")
	cacheBytes := fs.Int64("cache-bytes", 64<<20, "response cache byte budget")
	timeout := fs.Duration("timeout", 60*time.Second, "default per-request wait deadline")
	drain := fs.Duration("drain", 30*time.Second, "shutdown grace period for in-flight simulations")
	peers := fs.String("peers", "", "comma-separated peer base URLs to shard sweep cells across")
	storeDir := fs.String("store", "", "persistent result store directory (empty = memory cache only)")
	storeBytes := fs.Int64("store-bytes", 256<<20, "persistent store byte budget")
	warm := fs.Bool("warm", false, "hold readiness until the paper grid is promoted from -store into memory")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() != 0 {
		fmt.Fprintf(stderr, "vltd: unexpected argument %q\n", fs.Arg(0))
		fs.Usage()
		return 2
	}
	if *warm && *storeDir == "" {
		fmt.Fprintln(stderr, "vltd: -warm needs -store DIR (warming promotes disk entries into memory)")
		fs.Usage()
		return 2
	}

	var st *store.Store
	if *storeDir != "" {
		var err error
		st, err = store.Open(*storeDir, *storeBytes)
		if err != nil {
			fmt.Fprintln(stderr, "vltd:", err)
			return 1
		}
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintln(stderr, "vltd:", err)
		return 1
	}
	s := serve.New(serve.Config{
		Jobs:       *jobs,
		MaxPending: *pending,
		CacheBytes: *cacheBytes,
		Timeout:    *timeout,
		Store:      st,
	})
	if st != nil {
		fmt.Fprintf(stdout, "vltd: store %s (%d entries, %d-byte budget)\n",
			st.Dir(), st.Len(), *storeBytes)
	}
	if *peers != "" {
		urls := strings.Split(*peers, ",")
		for i, u := range urls {
			u = strings.TrimSpace(u)
			if u == "" || (!strings.HasPrefix(u, "http://") && !strings.HasPrefix(u, "https://")) {
				fmt.Fprintf(stderr, "vltd: bad -peers entry %q: want http(s)://host:port\n", u)
				return 2
			}
			urls[i] = u
		}
		fcfg := fleet.Config{
			Peers:    urls,
			Registry: s.Registry().Scope("fleet"),
		}
		if st != nil {
			// A degraded node consults its persistent tier before
			// re-simulating a peer-owned cell.
			fcfg.Disk = st.Get
		}
		s.SetFleet(fleet.New(fcfg))
		fmt.Fprintf(stdout, "vltd: fleet of %d peers: %s\n", len(urls), strings.Join(urls, ", "))
	}
	hs := &http.Server{Handler: s.Handler()}
	fmt.Fprintf(stdout, "vltd: listening on http://%s\n", ln.Addr())

	sigc := make(chan os.Signal, 1)
	signalNotify(sigc, os.Interrupt, syscall.SIGTERM)
	// The serve goroutine, the signal waiter, and (with -warm) the cache
	// warmer run under the audited pool's Parallel (the only sanctioned
	// goroutine source). serveFailed releases the waiter if Serve dies on
	// its own (e.g. listener error), so a startup failure never hangs the
	// process.
	serveFailed := make(chan struct{})
	fns := []func() error{
		func() error {
			err := hs.Serve(ln)
			close(serveFailed)
			if err == http.ErrServerClosed {
				return nil
			}
			return err
		},
		func() error {
			select {
			case sig := <-sigc:
				// Flip readiness first: fleet health-checkers and load
				// balancers see 503 on /healthz?ready=1 and stop routing
				// new cells here while in-flight work drains.
				s.BeginDrain()
				fmt.Fprintf(stdout, "vltd: %v: draining in-flight simulations (up to %s)\n", sig, *drain)
				ctx, cancel := context.WithTimeout(context.Background(), *drain)
				defer cancel()
				return hs.Shutdown(ctx)
			case <-serveFailed:
				return nil
			}
		},
	}
	if *warm {
		// Readiness stays false while the paper grid promotes from disk
		// into memory; the listener is already accepting, so /healthz
		// answers (ready=1 says 503) but load balancers hold traffic.
		s.SetReady(false)
		fns = append(fns, func() error {
			n := s.Warm()
			s.SetReady(true)
			fmt.Fprintf(stdout, "vltd: warmed %d cells from %s\n", n, *storeDir)
			return nil
		})
	}
	errs := runner.Parallel(fns...)
	for _, err := range errs {
		if err != nil {
			fmt.Fprintln(stderr, "vltd:", err)
			code = 1
		}
	}
	if code == 0 {
		snap := s.Registry().Snapshot()
		fmt.Fprintf(stdout, "vltd: shutdown complete (%d requests served, %d cache hits, %d simulations)\n",
			snap.Uint("serve.http.requests"), snap.Uint("serve.cache.hits"),
			snap.Uint("serve.flight.executed"))
	}
	return code
}
