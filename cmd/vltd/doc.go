// Command vltd is the caching simulation service daemon: a long-lived
// HTTP server over the vlt simulation and experiment stack
// (internal/serve). Identical concurrent requests coalesce onto one
// simulation, results are cached content-addressed under a byte budget,
// overload is shed with 429 + Retry-After, and SIGINT/SIGTERM drain
// in-flight simulations before exit.
//
// Usage:
//
//	vltd [-addr 127.0.0.1:8317] [-jobs N] [-pending N] [-cache-bytes N]
//	     [-timeout D] [-drain D] [-peers URL,URL,...]
//
// With -peers, sweep cells shard across the fleet by cell key: each
// cell is computed on its owning node and unreachable peers degrade to
// local recomputation (see internal/fleet).
//
// Endpoints:
//
//	GET  /v1/run?workload=mxm&machine=base  one cell, full metric registry
//	POST /v1/sweep                          a grid of cells, streamed as NDJSON
//	GET  /v1/experiment?name=figure6        a paper figure/table by name
//	GET  /v1/workloads                      workload discovery
//	GET  /v1/machines                       machine discovery
//	GET  /healthz                           liveness (?ready=1 for readiness)
//	GET  /metricsz                          serving-layer metric registry
package main
