package main

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"os"
	"regexp"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"
)

// syncBuffer is a goroutine-safe bytes.Buffer for capturing the
// daemon's output while it runs.
type syncBuffer struct {
	mu sync.Mutex
	b  bytes.Buffer
}

func (s *syncBuffer) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.Write(p)
}

func (s *syncBuffer) String() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.String()
}

// TestUsageErrors pins the exit codes for bad invocations.
func TestUsageErrors(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-no-such-flag"}, &out, &errb); code != 2 {
		t.Fatalf("bad flag: exit %d, want 2", code)
	}
	if code := run([]string{"positional"}, &out, &errb); code != 2 {
		t.Fatalf("positional arg: exit %d, want 2", code)
	}
	if code := run([]string{"-addr", "256.0.0.1:bad"}, &out, &errb); code != 1 {
		t.Fatalf("unlistenable addr: exit %d, want 1", code)
	}
	if code := run([]string{"-warm"}, &out, &errb); code != 2 {
		t.Fatalf("-warm without -store: exit %d, want 2", code)
	}
}

// TestDaemonLifecycle boots the daemon on an ephemeral port, exercises
// /healthz and one /v1/run over real HTTP, then delivers a (fake)
// SIGTERM and verifies a clean drained exit.
func TestDaemonLifecycle(t *testing.T) {
	sigc := make(chan chan<- os.Signal, 1)
	signalNotify = func(c chan<- os.Signal, _ ...os.Signal) { sigc <- c }
	defer func() { signalNotify = nil }()

	var out, errb syncBuffer
	done := make(chan int, 1)
	go func() { done <- run([]string{"-addr", "127.0.0.1:0"}, &out, &errb) }()

	// The daemon prints its resolved address before serving.
	addrRE := regexp.MustCompile(`listening on (http://[^\s]+)`)
	var url string
	deadline := time.Now().Add(5 * time.Second)
	for url == "" {
		if m := addrRE.FindStringSubmatch(out.String()); m != nil {
			url = m[1]
		} else if time.Now().After(deadline) {
			t.Fatalf("no listen line; stdout=%q stderr=%q", out.String(), errb.String())
		} else {
			time.Sleep(5 * time.Millisecond)
		}
	}
	sig := <-sigc

	resp, err := http.Get(url + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var health struct {
		Status string `json:"status"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&health); err != nil || health.Status != "ok" {
		t.Fatalf("healthz: %v, status %q", err, health.Status)
	}
	resp.Body.Close()

	resp, err = http.Get(url + "/v1/run?workload=mxm&machine=base")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || !strings.Contains(string(body), `"cycles"`) {
		t.Fatalf("/v1/run: status %d, body %.120s", resp.StatusCode, body)
	}

	sig <- syscall.SIGTERM
	select {
	case code := <-done:
		if code != 0 {
			t.Fatalf("exit %d; stderr=%q", code, errb.String())
		}
	case <-time.After(10 * time.Second):
		t.Fatal("daemon did not exit after SIGTERM")
	}
	if s := out.String(); !strings.Contains(s, "draining") || !strings.Contains(s, "shutdown complete") {
		t.Fatalf("missing drain/shutdown lines in output:\n%s", s)
	}
}

// bootDaemon starts run() with the given args and returns the base URL,
// the injected signal channel, the exit-code channel and the output
// buffer.
func bootDaemon(t *testing.T, args []string, sigc chan chan<- os.Signal) (string, chan<- os.Signal, chan int, *syncBuffer) {
	t.Helper()
	out := &syncBuffer{}
	done := make(chan int, 1)
	go func() { done <- run(args, out, out) }()
	addrRE := regexp.MustCompile(`listening on (http://[^\s]+)`)
	var url string
	deadline := time.Now().Add(5 * time.Second)
	for url == "" {
		if m := addrRE.FindStringSubmatch(out.String()); m != nil {
			url = m[1]
		} else if time.Now().After(deadline) {
			t.Fatalf("no listen line; output=%q", out.String())
		} else {
			time.Sleep(5 * time.Millisecond)
		}
	}
	return url, <-sigc, done, out
}

// stopDaemon delivers the fake SIGTERM and waits for a clean exit.
func stopDaemon(t *testing.T, sig chan<- os.Signal, done chan int, out *syncBuffer) {
	t.Helper()
	sig <- syscall.SIGTERM
	select {
	case code := <-done:
		if code != 0 {
			t.Fatalf("exit %d; output=%q", code, out.String())
		}
	case <-time.After(10 * time.Second):
		t.Fatal("daemon did not exit after SIGTERM")
	}
}

// TestStoreWarmRestart is the operator's restart story over real HTTP:
// a daemon with -store renders one cell, restarts with -warm, reports
// the warmed count before readiness, and serves the cell from memory
// without re-simulating.
func TestStoreWarmRestart(t *testing.T) {
	sigc := make(chan chan<- os.Signal, 2)
	signalNotify = func(c chan<- os.Signal, _ ...os.Signal) { sigc <- c }
	defer func() { signalNotify = nil }()
	dir := t.TempDir()

	url, sig, done, out := bootDaemon(t, []string{"-addr", "127.0.0.1:0", "-store", dir}, sigc)
	resp, err := http.Get(url + "/v1/run?workload=mxm&machine=base")
	if err != nil {
		t.Fatal(err)
	}
	first, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || resp.Header.Get("X-VLT-Cache") != "miss" {
		t.Fatalf("first run: status %d, tier %q", resp.StatusCode, resp.Header.Get("X-VLT-Cache"))
	}
	stopDaemon(t, sig, done, out)

	url, sig, done, out = bootDaemon(t, []string{"-addr", "127.0.0.1:0", "-store", dir, "-warm"}, sigc)
	waitWarm := time.Now().Add(5 * time.Second)
	for !strings.Contains(out.String(), "warmed") {
		if time.Now().After(waitWarm) {
			t.Fatalf("no warmed line; output=%q", out.String())
		}
		time.Sleep(5 * time.Millisecond)
	}
	resp, err = http.Get(url + "/v1/run?workload=mxm&machine=base")
	if err != nil {
		t.Fatal(err)
	}
	second, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || resp.Header.Get("X-VLT-Cache") != "hit" {
		t.Fatalf("warmed run: status %d, tier %q", resp.StatusCode, resp.Header.Get("X-VLT-Cache"))
	}
	if !bytes.Equal(first, second) {
		t.Fatal("warmed body differs from the pre-restart body")
	}
	stopDaemon(t, sig, done, out)
	if s := out.String(); !strings.Contains(s, "0 simulations") {
		t.Fatalf("warmed daemon simulated; shutdown line in %q", s)
	}
}
