// Command vltlint enforces the simulator's determinism contract
// (internal/lint) on the repository's own Go source. It exits 1 when
// any finding is reported and is wired into scripts/check.sh as a
// tier-1 gate.
//
// Usage:
//
//	vltlint [-root dir] [-docs] [patterns...]
//
// Patterns are package directories relative to the module root or the
// recursive form "./..." (the default). With -docs it additionally
// enforces the documentation contract: every internal/* package must
// carry a doc.go with a package doc comment (rule "pkg-doc").
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"runtime/debug"

	"vlt/internal/lint"
	"vlt/internal/report"
	"vlt/internal/runner"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is the testable entry point: it parses args, lints, writes to
// stdout/stderr and returns the process exit code.
func run(args []string, stdout, stderr io.Writer) (code int) {
	defer func() {
		if r := recover(); r != nil {
			fmt.Fprint(stderr, report.Diagnose("vltlint",
				&runner.PanicError{Key: "vltlint", Value: r, Stack: debug.Stack()}))
			code = 2
		}
	}()

	fs := flag.NewFlagSet("vltlint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	root := fs.String("root", "", "module root (default: nearest go.mod above the working directory)")
	docs := fs.Bool("docs", false, "also enforce the documentation contract (doc.go per internal package)")
	fs.Usage = func() {
		fmt.Fprintln(stderr, "usage: vltlint [-root dir] [-docs] [patterns...]")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}

	dir := *root
	if dir == "" {
		var err error
		dir, err = lint.FindModuleRoot(".")
		if err != nil {
			fmt.Fprint(stderr, report.Diagnose("vltlint", err))
			return 2
		}
	}
	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	findings, err := lint.Run(dir, patterns)
	if err != nil {
		fmt.Fprint(stderr, report.Diagnose("vltlint", err))
		return 2
	}
	if *docs {
		docFindings, err := lint.CheckDocs(dir)
		if err != nil {
			fmt.Fprint(stderr, report.Diagnose("vltlint", err))
			return 2
		}
		findings = append(findings, docFindings...)
	}
	for _, f := range findings {
		fmt.Fprintln(stdout, f)
	}
	if len(findings) > 0 {
		fmt.Fprintf(stderr, "vltlint: %d finding(s)\n", len(findings))
		return 1
	}
	return 0
}
