package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime/debug"

	"vlt/internal/lint"
	"vlt/internal/report"
	"vlt/internal/runner"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// lintReport is the JSON shape of one vltlint run. Counts uses the
// internal/stats naming scheme ("lint.findings.<rule>"), mirroring
// vltvet's report.
type lintReport struct {
	Root     string             `json:"root"`
	Findings []lint.Finding     `json:"findings"`
	Counts   map[string]float64 `json:"counts"`
}

// run is the testable entry point: it parses args, lints, writes to
// stdout/stderr and returns the process exit code.
func run(args []string, stdout, stderr io.Writer) (code int) {
	defer func() {
		if r := recover(); r != nil {
			fmt.Fprint(stderr, report.Diagnose("vltlint",
				&runner.PanicError{Key: "vltlint", Value: r, Stack: debug.Stack()}))
			code = 2
		}
	}()

	fs := flag.NewFlagSet("vltlint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	root := fs.String("root", "", "module root (default: nearest go.mod above the working directory)")
	docs := fs.Bool("docs", false, "also enforce the documentation contract (doc.go per internal and cmd package)")
	jsonOut := fs.Bool("json", false, "emit findings and per-rule counts as JSON")
	fs.Usage = func() {
		fmt.Fprintln(stderr, "usage: vltlint [-root dir] [-docs] [-json] [patterns...]")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}

	dir := *root
	if dir == "" {
		var err error
		dir, err = lint.FindModuleRoot(".")
		if err != nil {
			fmt.Fprint(stderr, report.Diagnose("vltlint", err))
			return 2
		}
	}
	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	findings, err := lint.Run(dir, patterns)
	if err != nil {
		fmt.Fprint(stderr, report.Diagnose("vltlint", err))
		return 2
	}
	if *docs {
		docFindings, err := lint.CheckDocs(dir)
		if err != nil {
			fmt.Fprint(stderr, report.Diagnose("vltlint", err))
			return 2
		}
		findings = append(findings, docFindings...)
	}

	if *jsonOut {
		counts := map[string]float64{}
		for _, f := range findings {
			counts["lint.findings."+f.Rule]++
		}
		r := lintReport{Root: dir, Findings: findings, Counts: counts}
		if r.Findings == nil {
			r.Findings = []lint.Finding{}
		}
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(r); err != nil {
			fmt.Fprintln(stderr, "vltlint:", err)
			return 2
		}
	} else {
		for _, f := range findings {
			fmt.Fprintln(stdout, f)
		}
	}
	if len(findings) > 0 {
		fmt.Fprintf(stderr, "vltlint: %d finding(s)\n", len(findings))
		return 1
	}
	return 0
}
