package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestRunRepoClean lints the real repository, which must be clean.
func TestRunRepoClean(t *testing.T) {
	var out, errOut strings.Builder
	if code := run([]string{"./..."}, &out, &errOut); code != 0 {
		t.Fatalf("exit %d\nstdout: %s\nstderr: %s", code, out.String(), errOut.String())
	}
}

// TestRunFindings lints a fabricated module with a violation.
func TestRunFindings(t *testing.T) {
	root := t.TempDir()
	write := func(rel, content string) {
		t.Helper()
		full := filepath.Join(root, rel)
		if err := os.MkdirAll(filepath.Dir(full), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(full, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	write("go.mod", "module vlt\n\ngo 1.22\n")
	write("internal/core/bad.go", `package core

import "time"

func Stamp() int64 { return time.Now().UnixNano() }
`)

	var out, errOut strings.Builder
	if code := run([]string{"-root", root, "./..."}, &out, &errOut); code != 1 {
		t.Fatalf("exit %d, want 1; stderr: %s", code, errOut.String())
	}
	if !strings.Contains(out.String(), "wall-clock") {
		t.Errorf("stdout missing wall-clock finding:\n%s", out.String())
	}
	if !strings.Contains(errOut.String(), "1 finding(s)") {
		t.Errorf("stderr missing summary:\n%s", errOut.String())
	}
}

func TestRunBadPattern(t *testing.T) {
	var out, errOut strings.Builder
	if code := run([]string{"./no/such/pkg"}, &out, &errOut); code != 2 {
		t.Errorf("bad pattern: exit %d, want 2", code)
	}
}

// writeModule materializes a fabricated module for exit-code fixtures.
func writeModule(t *testing.T, files map[string]string) string {
	t.Helper()
	root := t.TempDir()
	files["go.mod"] = "module vlt\n\ngo 1.22\n"
	for rel, content := range files {
		full := filepath.Join(root, rel)
		if err := os.MkdirAll(filepath.Dir(full), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(full, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return root
}

// TestRunJSON is the -json smoke test: a clean run emits an empty
// findings array and exit 0; a dirty run carries the finding fields
// and per-rule counts.
func TestRunJSON(t *testing.T) {
	root := writeModule(t, map[string]string{
		"internal/core/ok.go": "package core\n\nfunc Ok() {}\n",
	})
	var out, errOut strings.Builder
	if code := run([]string{"-root", root, "-json", "./..."}, &out, &errOut); code != 0 {
		t.Fatalf("clean module: exit %d\nstderr: %s", code, errOut.String())
	}
	var clean struct {
		Findings []json.RawMessage  `json:"findings"`
		Counts   map[string]float64 `json:"counts"`
	}
	if err := json.Unmarshal([]byte(out.String()), &clean); err != nil {
		t.Fatalf("clean output is not JSON: %v\n%s", err, out.String())
	}
	if clean.Findings == nil || len(clean.Findings) != 0 {
		t.Errorf("clean findings should be an empty array: %s", out.String())
	}

	root = writeModule(t, map[string]string{
		"internal/core/bad.go": `package core

import "time"

func Stamp() int64 { return time.Now().UnixNano() }
`,
	})
	out.Reset()
	errOut.Reset()
	if code := run([]string{"-root", root, "-json", "./..."}, &out, &errOut); code != 1 {
		t.Fatalf("dirty module: exit %d, want 1\nstderr: %s", code, errOut.String())
	}
	var dirty struct {
		Findings []struct {
			File string `json:"file"`
			Line int    `json:"line"`
			Rule string `json:"rule"`
			Msg  string `json:"msg"`
		} `json:"findings"`
		Counts map[string]float64 `json:"counts"`
	}
	if err := json.Unmarshal([]byte(out.String()), &dirty); err != nil {
		t.Fatalf("dirty output is not JSON: %v\n%s", err, out.String())
	}
	if len(dirty.Findings) != 1 || dirty.Findings[0].Rule != "wall-clock" ||
		dirty.Findings[0].File != "internal/core/bad.go" || dirty.Findings[0].Line != 5 {
		t.Errorf("unexpected findings: %s", out.String())
	}
	if dirty.Counts["lint.findings.wall-clock"] != 1 {
		t.Errorf("missing per-rule count: %s", out.String())
	}
}

// statsStub backs the metrics-registration fixtures.
const statsStub = `package stats

type Registry struct{}

func (r *Registry) Counter(name string, p *uint64) {}
`

// TestRunMetricsRegressionExit: deleting a registration entry from a
// registerMetrics method makes vltlint exit non-zero (acceptance
// criterion for the metrics-registered pass).
func TestRunMetricsRegressionExit(t *testing.T) {
	complete := map[string]string{
		"internal/stats/stats.go": statsStub,
		"internal/report/proxy.go": `package report

import "vlt/internal/stats"

type proxy struct {
	accepted uint64
	dropped  uint64
}

func (p *proxy) registerMetrics(r *stats.Registry) {
	r.Counter("accepted", &p.accepted)
	r.Counter("dropped", &p.dropped)
}
`,
	}
	root := writeModule(t, complete)
	var out, errOut strings.Builder
	if code := run([]string{"-root", root, "./..."}, &out, &errOut); code != 0 {
		t.Fatalf("complete registration: exit %d\n%s", code, out.String())
	}

	// Delete one registration entry: the run must now fail.
	broken := map[string]string{
		"internal/stats/stats.go": complete["internal/stats/stats.go"],
		"internal/report/proxy.go": strings.Replace(complete["internal/report/proxy.go"],
			"\tr.Counter(\"dropped\", &p.dropped)\n", "", 1),
	}
	root = writeModule(t, broken)
	out.Reset()
	errOut.Reset()
	if code := run([]string{"-root", root, "./..."}, &out, &errOut); code != 1 {
		t.Fatalf("deleted registration: exit %d, want 1\n%s", code, out.String())
	}
	if !strings.Contains(out.String(), "metrics-registered") {
		t.Errorf("stdout missing metrics-registered finding:\n%s", out.String())
	}
}

// TestRunLockGuardRegressionExit: adding an unguarded access to a
// guarded field makes vltlint exit non-zero (acceptance criterion for
// the lock-discipline pass).
func TestRunLockGuardRegressionExit(t *testing.T) {
	clean := `package report

import "sync"

type box struct {
	mu sync.Mutex
	n  int
}

func (b *box) Inc() {
	b.mu.Lock()
	b.n++
	b.mu.Unlock()
}

func (b *box) Add(d int) {
	b.mu.Lock()
	b.n += d
	b.mu.Unlock()
}
`
	root := writeModule(t, map[string]string{"internal/report/box.go": clean})
	var out, errOut strings.Builder
	if code := run([]string{"-root", root, "./..."}, &out, &errOut); code != 0 {
		t.Fatalf("guarded accesses: exit %d\n%s", code, out.String())
	}

	// Add one bare access: the run must now fail.
	root = writeModule(t, map[string]string{
		"internal/report/box.go": clean + "\nfunc (b *box) Peek() int { return b.n }\n",
	})
	out.Reset()
	errOut.Reset()
	if code := run([]string{"-root", root, "./..."}, &out, &errOut); code != 1 {
		t.Fatalf("unguarded access: exit %d, want 1\n%s", code, out.String())
	}
	if !strings.Contains(out.String(), "lock-guard") {
		t.Errorf("stdout missing lock-guard finding:\n%s", out.String())
	}
}
