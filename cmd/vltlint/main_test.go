package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestRunRepoClean lints the real repository, which must be clean.
func TestRunRepoClean(t *testing.T) {
	var out, errOut strings.Builder
	if code := run([]string{"./..."}, &out, &errOut); code != 0 {
		t.Fatalf("exit %d\nstdout: %s\nstderr: %s", code, out.String(), errOut.String())
	}
}

// TestRunFindings lints a fabricated module with a violation.
func TestRunFindings(t *testing.T) {
	root := t.TempDir()
	write := func(rel, content string) {
		t.Helper()
		full := filepath.Join(root, rel)
		if err := os.MkdirAll(filepath.Dir(full), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(full, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	write("go.mod", "module vlt\n\ngo 1.22\n")
	write("internal/core/bad.go", `package core

import "time"

func Stamp() int64 { return time.Now().UnixNano() }
`)

	var out, errOut strings.Builder
	if code := run([]string{"-root", root, "./..."}, &out, &errOut); code != 1 {
		t.Fatalf("exit %d, want 1; stderr: %s", code, errOut.String())
	}
	if !strings.Contains(out.String(), "wall-clock") {
		t.Errorf("stdout missing wall-clock finding:\n%s", out.String())
	}
	if !strings.Contains(errOut.String(), "1 finding(s)") {
		t.Errorf("stderr missing summary:\n%s", errOut.String())
	}
}

func TestRunBadPattern(t *testing.T) {
	var out, errOut strings.Builder
	if code := run([]string{"./no/such/pkg"}, &out, &errOut); code != 2 {
		t.Errorf("bad pattern: exit %d, want 2", code)
	}
}
