// Command vltlint enforces the repository's static-analysis contracts
// (internal/lint) on its own Go source: the determinism rules on the
// simulation core, the concurrency-safety passes (lock-discipline,
// goroutine-ownership) module-wide, deadline propagation on the
// serving layer, and metrics-registration exhaustiveness. It exits 1
// when any finding is reported and is wired into scripts/check.sh as a
// tier-1 gate.
//
// Usage:
//
//	vltlint [-root dir] [-docs] [-json] [patterns...]
//
// Patterns are package directories relative to the module root or the
// recursive form "./..." (the default). With -docs it additionally
// enforces the documentation contract: every internal/* and cmd/*
// package must carry a doc.go with a package doc comment (rule
// "pkg-doc"). With -json it emits the findings and per-rule counts as
// a machine-readable report (parity with vltvet -json).
//
// Exit codes: 0 clean, 1 findings, 2 usage or analysis error.
package main
