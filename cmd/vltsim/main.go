package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"runtime/debug"
	"strings"

	"vlt"
	"vlt/internal/guard"
	"vlt/internal/report"
	"vlt/internal/runner"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is the testable entry point: it parses args, simulates, writes to
// stdout/stderr and returns the process exit code. A panic anywhere
// below renders as a diagnostic instead of crashing the process.
func run(args []string, stdout, stderr io.Writer) (code int) {
	defer func() {
		if r := recover(); r != nil {
			fmt.Fprint(stderr, report.Diagnose("vltsim",
				&runner.PanicError{Key: "vltsim", Value: r, Stack: debug.Stack()}))
			code = 1
		}
	}()
	fs := flag.NewFlagSet("vltsim", flag.ContinueOnError)
	fs.SetOutput(stderr)
	workload := fs.String("workload", "", "workload name (see -list)")
	machine := fs.String("machine", "base", "machine configuration")
	scale := fs.Int("scale", 1, "problem size multiplier")
	lanes := fs.Int("lanes", 0, "lane count override (base machine only)")
	threads := fs.Int("threads", 0, "software thread count override")
	list := fs.Bool("list", false, "list workloads and machines")
	noVerify := fs.Bool("no-verify", false, "skip result verification")
	verbose := fs.Bool("v", false, "print the full metric registry")
	stallLimit := fs.Uint64("stall-limit", 0, "abort when no instruction retires for N cycles (0 = default)")
	auditFlag := fs.String("audit", "auto", "invariant auditor: auto, on, off")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	audit, err := guard.ParseAuditMode(*auditFlag)
	if err != nil {
		fmt.Fprintln(stderr, "vltsim:", err)
		return 2
	}

	if *list {
		fmt.Fprintln(stdout, "workloads:", strings.Join(vlt.Workloads(), " "))
		var ms []string
		for _, m := range vlt.Machines() {
			ms = append(ms, string(m))
		}
		fmt.Fprintln(stdout, "machines: ", strings.Join(ms, " "))
		return 0
	}
	if *workload == "" {
		fmt.Fprintln(stderr, "vltsim: -workload is required (try -list)")
		return 2
	}

	res, err := vlt.Run(*workload, vlt.Machine(*machine), vlt.Options{
		Scale: *scale, Lanes: *lanes, Threads: *threads, SkipVerify: *noVerify,
		StallLimit: *stallLimit, Audit: audit,
	})
	if err != nil {
		fmt.Fprint(stderr, report.Diagnose("vltsim", err))
		return 1
	}

	fmt.Fprintf(stdout, "workload:        %s on %s (%d thread(s), scale %d)\n",
		res.Workload, res.Machine, res.Threads, *scale)
	fmt.Fprintf(stdout, "cycles:          %d\n", res.Cycles)
	fmt.Fprintf(stdout, "instructions:    %d retired (IPC %.2f)\n", res.Retired, res.IPC())
	fmt.Fprintf(stdout, "vector:          %d instructions, %d element ops\n", res.VecIssued, res.VecElemOps)
	if res.VecIssued > 0 {
		fmt.Fprintf(stdout, "datapaths:       busy %.1f%%  partly-idle %.1f%%  stalled %.1f%%  all-idle %.1f%%\n",
			res.Util.BusyPct, res.Util.PartIdlePct, res.Util.StalledPct, res.Util.AllIdlePct)
	}
	fmt.Fprintf(stdout, "characteristics: %%vect %.1f, avg VL %.1f, common VLs %v, opportunity %.1f%%\n",
		res.PercentVect, res.AvgVL, res.CommonVLs, res.OpportunityPct)
	if res.Verified {
		fmt.Fprintln(stdout, "verification:    PASS (results match host reference)")
	} else {
		fmt.Fprintln(stdout, "verification:    skipped")
	}
	if *verbose {
		// The registry-driven listing replaces the old hand-written
		// per-SU/per-lane printf block: every unit's counters appear
		// under its own su<N>./lane<N>. prefix.
		pairs := make([][2]string, 0, len(res.Metrics))
		for _, m := range res.Metrics {
			pairs = append(pairs, [2]string{m.Name, m.FormatValue()})
		}
		fmt.Fprint(stdout, report.Metrics("\nmetrics", pairs))
	}
	return 0
}
