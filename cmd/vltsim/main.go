// Command vltsim runs one workload on one machine configuration and
// prints timing, utilization and characterization statistics.
//
// Usage:
//
//	vltsim -workload mpenc -machine V2-CMP [-scale N] [-lanes N] [-threads N]
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"vlt"
)

func main() {
	workload := flag.String("workload", "", "workload name (see -list)")
	machine := flag.String("machine", "base", "machine configuration")
	scale := flag.Int("scale", 1, "problem size multiplier")
	lanes := flag.Int("lanes", 0, "lane count override (base machine only)")
	threads := flag.Int("threads", 0, "software thread count override")
	list := flag.Bool("list", false, "list workloads and machines")
	noVerify := flag.Bool("no-verify", false, "skip result verification")
	verbose := flag.Bool("v", false, "print per-unit pipeline statistics")
	flag.Parse()

	if *list {
		fmt.Println("workloads:", strings.Join(vlt.Workloads(), " "))
		var ms []string
		for _, m := range vlt.Machines() {
			ms = append(ms, string(m))
		}
		fmt.Println("machines: ", strings.Join(ms, " "))
		return
	}
	if *workload == "" {
		fmt.Fprintln(os.Stderr, "vltsim: -workload is required (try -list)")
		os.Exit(2)
	}

	res, err := vlt.Run(*workload, vlt.Machine(*machine), vlt.Options{
		Scale: *scale, Lanes: *lanes, Threads: *threads, SkipVerify: *noVerify,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "vltsim:", err)
		os.Exit(1)
	}

	fmt.Printf("workload:        %s on %s (%d thread(s), scale %d)\n",
		res.Workload, res.Machine, res.Threads, *scale)
	fmt.Printf("cycles:          %d\n", res.Cycles)
	fmt.Printf("instructions:    %d retired (IPC %.2f)\n", res.Retired, res.IPC())
	fmt.Printf("vector:          %d instructions, %d element ops\n", res.VecIssued, res.VecElemOps)
	if res.VecIssued > 0 {
		fmt.Printf("datapaths:       busy %.1f%%  partly-idle %.1f%%  stalled %.1f%%  all-idle %.1f%%\n",
			res.Util.BusyPct, res.Util.PartIdlePct, res.Util.StalledPct, res.Util.AllIdlePct)
	}
	fmt.Printf("characteristics: %%vect %.1f, avg VL %.1f, common VLs %v, opportunity %.1f%%\n",
		res.PercentVect, res.AvgVL, res.CommonVLs, res.OpportunityPct)
	if res.Verified {
		fmt.Println("verification:    PASS (results match host reference)")
	} else {
		fmt.Println("verification:    skipped")
	}
	if *verbose {
		for _, su := range res.SUs {
			fmt.Printf("SU%d:  fetched %d  dispatched %d  issued %d  retired %d\n",
				su.ID, su.Fetched, su.Dispatched, su.Issued, su.Retired)
			fmt.Printf("      stalls: branch %d  icache %d  rob %d  window %d  viq %d\n",
				su.FetchStallBranch, su.FetchStallICache,
				su.DispStallROB, su.DispStallWindow, su.DispStallVIQ)
			fmt.Printf("      bpred mispredict %.1f%%  L1I hit %.1f%%  L1D hit %.1f%%\n",
				su.BranchMispredictPct, su.L1IHitPct, su.L1DHitPct)
		}
		for _, lc := range res.LaneCores {
			fmt.Printf("lane%d: fetched %d  issued %d  retired %d  stalls: operand %d  memport %d\n",
				lc.ID, lc.Fetched, lc.Issued, lc.Retired, lc.StallOperand, lc.StallMemPort)
			fmt.Printf("       bpred mispredict %.1f%%  I$ hit %.1f%%\n",
				lc.BranchMispredictPct, lc.ICacheHitPct)
		}
	}
}
