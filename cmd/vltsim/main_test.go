package main

import (
	"strings"
	"testing"
)

func TestRunList(t *testing.T) {
	var out, errOut strings.Builder
	if code := run([]string{"-list"}, &out, &errOut); code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errOut.String())
	}
	got := out.String()
	for _, want := range []string{"workloads:", "mxm", "machines:", "V2-CMP"} {
		if !strings.Contains(got, want) {
			t.Errorf("-list output missing %q:\n%s", want, got)
		}
	}
}

func TestRunWorkloadSmoke(t *testing.T) {
	var out, errOut strings.Builder
	if code := run([]string{"-workload", "mxm", "-machine", "base"}, &out, &errOut); code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errOut.String())
	}
	got := out.String()
	for _, want := range []string{
		"workload:        mxm on base",
		"cycles:",
		"datapaths:",
		"verification:    PASS",
	} {
		if !strings.Contains(got, want) {
			t.Errorf("output missing %q:\n%s", want, got)
		}
	}
}

func TestRunVerboseMetrics(t *testing.T) {
	var out, errOut strings.Builder
	code := run([]string{"-workload", "mxm", "-machine", "base", "-v", "-no-verify"}, &out, &errOut)
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errOut.String())
	}
	got := out.String()
	for _, want := range []string{"metrics", "su0.fetch.instrs", "vcl.util.busy", "l2.reads", "vm.ops.avg_vl"} {
		if !strings.Contains(got, want) {
			t.Errorf("-v output missing %q:\n%s", want, got)
		}
	}
}

func TestRunErrors(t *testing.T) {
	var out, errOut strings.Builder
	if code := run(nil, &out, &errOut); code != 2 {
		t.Errorf("missing -workload: exit %d, want 2", code)
	}
	errOut.Reset()
	if code := run([]string{"-workload", "nope"}, &out, &errOut); code != 1 {
		t.Errorf("unknown workload: exit %d, want 1", code)
	}
	if errOut.Len() == 0 {
		t.Error("unknown workload produced no diagnostic")
	}
}
