package main

import (
	"strings"
	"testing"
)

func TestRunList(t *testing.T) {
	var out, errOut strings.Builder
	if code := run([]string{"-list"}, &out, &errOut); code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errOut.String())
	}
	got := out.String()
	for _, want := range []string{"workloads:", "mxm", "machines:", "V2-CMP"} {
		if !strings.Contains(got, want) {
			t.Errorf("-list output missing %q:\n%s", want, got)
		}
	}
}

func TestRunWorkloadSmoke(t *testing.T) {
	var out, errOut strings.Builder
	if code := run([]string{"-workload", "mxm", "-machine", "base"}, &out, &errOut); code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errOut.String())
	}
	got := out.String()
	for _, want := range []string{
		"workload:        mxm on base",
		"cycles:",
		"datapaths:",
		"verification:    PASS",
	} {
		if !strings.Contains(got, want) {
			t.Errorf("output missing %q:\n%s", want, got)
		}
	}
}

func TestRunVerboseMetrics(t *testing.T) {
	var out, errOut strings.Builder
	code := run([]string{"-workload", "mxm", "-machine", "base", "-v", "-no-verify"}, &out, &errOut)
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errOut.String())
	}
	got := out.String()
	for _, want := range []string{"metrics", "su0.fetch.instrs", "vcl.util.busy", "l2.reads", "vm.ops.avg_vl"} {
		if !strings.Contains(got, want) {
			t.Errorf("-v output missing %q:\n%s", want, got)
		}
	}
}

func TestRunErrors(t *testing.T) {
	var out, errOut strings.Builder
	if code := run(nil, &out, &errOut); code != 2 {
		t.Errorf("missing -workload: exit %d, want 2", code)
	}
	errOut.Reset()
	if code := run([]string{"-workload", "nope"}, &out, &errOut); code != 1 {
		t.Errorf("unknown workload: exit %d, want 1", code)
	}
	if errOut.Len() == 0 {
		t.Error("unknown workload produced no diagnostic")
	}
}

func TestRunGuardStallDiagnostic(t *testing.T) {
	var out, errOut strings.Builder
	// A 2-cycle stall limit trips during the cold-start cache fill, so
	// the run must abort with a clean diagnostic, not a stack trace.
	code := run([]string{"-workload", "mxm", "-machine", "base", "-stall-limit", "2"}, &out, &errOut)
	if code != 1 {
		t.Fatalf("exit %d, want 1\nstderr: %s", code, errOut.String())
	}
	got := errOut.String()
	for _, want := range []string{"vltsim: simulation aborted", "guard:", "machine state at failure", "thread 0"} {
		if !strings.Contains(got, want) {
			t.Errorf("diagnostic missing %q:\n%s", want, got)
		}
	}
	if strings.Contains(got, "goroutine") {
		t.Errorf("diagnostic leaks a raw stack trace:\n%s", got)
	}
}

func TestRunBadAuditFlag(t *testing.T) {
	var out, errOut strings.Builder
	if code := run([]string{"-workload", "mxm", "-audit", "sometimes"}, &out, &errOut); code != 2 {
		t.Errorf("bad -audit value: exit %d, want 2", code)
	}
	if !strings.Contains(errOut.String(), "audit") {
		t.Errorf("stderr missing audit diagnostic: %s", errOut.String())
	}
}

func TestRunAuditOnMatchesOff(t *testing.T) {
	cycles := func(audit string) string {
		t.Helper()
		var out, errOut strings.Builder
		if code := run([]string{"-workload", "mxm", "-machine", "base", "-audit", audit}, &out, &errOut); code != 0 {
			t.Fatalf("-audit %s: exit %d, stderr: %s", audit, code, errOut.String())
		}
		for _, line := range strings.Split(out.String(), "\n") {
			if strings.Contains(line, "cycles:") {
				return line
			}
		}
		t.Fatalf("-audit %s: no cycles line:\n%s", audit, out.String())
		return ""
	}
	if on, off := cycles("on"), cycles("off"); on != off {
		t.Errorf("auditor perturbed timing: %q (on) != %q (off)", on, off)
	}
}
