// Command vltsim runs one workload on one machine configuration and
// prints timing, utilization and characterization statistics.
//
// Usage:
//
//	vltsim -workload mpenc -machine V2-CMP [-scale N] [-lanes N] [-threads N]
package main
