package main

import (
	"encoding/json"
	"strings"
	"testing"
)

func TestRunText(t *testing.T) {
	var out, errOut strings.Builder
	code := run([]string{"-workload", "mpenc", "-machine", "V4-CMT", "-budget", "8"}, &out, &errOut)
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errOut.String())
	}
	got := out.String()
	for _, want := range []string{"mpenc on V4-CMT", "runs simulated", "best plan", "verified=true"} {
		if !strings.Contains(got, want) {
			t.Errorf("output missing %q:\n%s", want, got)
		}
	}
}

func TestRunJSON(t *testing.T) {
	var out, errOut strings.Builder
	code := run([]string{"-workload", "mpenc", "-budget", "4", "-json"}, &out, &errOut)
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errOut.String())
	}
	var res struct {
		Workload  string `json:"workload"`
		Simulated int    `json:"simulated"`
		Verified  bool   `json:"verified"`
		Best      struct {
			Cycles uint64 `json:"cycles"`
		} `json:"best"`
	}
	if err := json.Unmarshal([]byte(out.String()), &res); err != nil {
		t.Fatalf("bad JSON: %v\n%s", err, out.String())
	}
	if res.Workload != "mpenc" || res.Simulated < 1 || res.Simulated > 4 {
		t.Errorf("unexpected result: %+v", res)
	}
	if !res.Verified || res.Best.Cycles == 0 {
		t.Errorf("best plan not verified: %+v", res)
	}
}

func TestRunUsageErrors(t *testing.T) {
	var out, errOut strings.Builder
	if code := run(nil, &out, &errOut); code != 2 {
		t.Errorf("no args: exit %d, want 2", code)
	}
	if !strings.Contains(errOut.String(), "usage: vltsearch") {
		t.Errorf("missing usage text:\n%s", errOut.String())
	}
	errOut.Reset()
	if code := run([]string{"-workload", "nope"}, &out, &errOut); code != 1 {
		t.Errorf("unknown workload: exit %d, want 1", code)
	}
	errOut.Reset()
	if code := run([]string{"-workload", "mpenc", "-policy", "nope"}, &out, &errOut); code != 1 {
		t.Errorf("unknown policy: exit %d, want 1", code)
	}
}
