// Command vltsearch explores the lane-repartition design space of one
// workload on one machine by speculative simulation: every VLTCFG the
// program issues becomes a decision point where the search forks the
// mid-run machine and tries alternative partition counts, without
// replaying the prefix. The best plan found is replayed from scratch
// and functionally verified before it is reported.
//
// Usage:
//
//	vltsearch -workload mpenc -machine V4-CMT [flags]
//
// The default exhaustive policy tries every alternative at the first
// -depth decisions, bounded by -budget total simulated runs; -policy
// beam and -policy sample (with -width and -seed) scale to deeper
// decision trees. The search is deterministic for fixed flags.
package main
