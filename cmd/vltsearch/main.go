package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime/debug"

	"vlt"
	"vlt/internal/report"
	"vlt/internal/runner"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is the testable entry point: it parses args, searches, writes to
// stdout/stderr and returns the process exit code.
func run(args []string, stdout, stderr io.Writer) (code int) {
	defer func() {
		if r := recover(); r != nil {
			fmt.Fprint(stderr, report.Diagnose("vltsearch",
				&runner.PanicError{Key: "vltsearch", Value: r, Stack: debug.Stack()}))
			code = 2
		}
	}()

	fs := flag.NewFlagSet("vltsearch", flag.ContinueOnError)
	fs.SetOutput(stderr)
	workload := fs.String("workload", "", "workload name (see vltsim -list)")
	machine := fs.String("machine", "V4-CMT", "machine configuration name")
	budget := fs.Int("budget", 0, "max simulated runs including the baseline (0 = default)")
	depth := fs.Int("depth", 0, "max leading decisions branched on (0 = default)")
	policy := fs.String("policy", "exhaustive", "expansion policy: exhaustive, beam or sample")
	width := fs.Int("width", 0, "beam width / sample count for -policy beam|sample (0 = 2)")
	seed := fs.Int64("seed", 0, "random seed for -policy sample")
	scale := fs.Int("scale", 0, "workload problem-size multiplier (0 = calibrated default)")
	threads := fs.Int("threads", 0, "software thread count (0 = machine's natural count)")
	jobs := fs.Int("jobs", 0, "concurrent simulations (0 = GOMAXPROCS)")
	jsonOut := fs.Bool("json", false, "emit the full result as JSON")
	fs.Usage = func() {
		fmt.Fprintln(stderr, "usage: vltsearch -workload <name> [flags]")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *workload == "" {
		fs.Usage()
		return 2
	}

	res, err := vlt.SearchLanePartition(*workload, vlt.Machine(*machine), vlt.SearchOptions{
		Scale:   *scale,
		Threads: *threads,
		Budget:  *budget,
		Depth:   *depth,
		Policy:  *policy,
		Width:   *width,
		Seed:    *seed,
		Workers: *jobs,
	})
	if err != nil {
		fmt.Fprint(stderr, report.Diagnose("vltsearch", err))
		return 1
	}

	if *jsonOut {
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(res); err != nil {
			fmt.Fprintln(stderr, "vltsearch:", err)
			return 2
		}
		return 0
	}

	fmt.Fprintf(stdout, "%s on %s: %d runs simulated (%d discarded), baseline %d cycles\n",
		res.Workload, res.Machine, res.Simulated, res.Discarded, res.DefaultCycles)
	for _, r := range res.Runs {
		status := fmt.Sprintf("%8d cycles", r.Cycles)
		if r.Failed {
			status = "failed: " + r.Err
		}
		fmt.Fprintf(stdout, "  plan %-14s %s\n", fmt.Sprint(r.Plan), status)
	}
	if res.Best.Failed {
		fmt.Fprintln(stdout, "no completed run found")
		return 1
	}
	fmt.Fprintf(stdout, "best plan %v: %d cycles, %.3fx vs baseline (verified=%t)\n",
		res.Best.Plan, res.Best.Cycles, res.Speedup, res.Verified)
	for _, d := range res.Best.Decisions {
		note := ""
		if d.Chosen != d.Requested {
			note = fmt.Sprintf(" (program asked for %d)", d.Requested)
		}
		fmt.Fprintf(stdout, "  decision %d @cycle %-8d thread %d -> %d partitions%s\n",
			d.Index, d.Cycle, d.Thread, d.Chosen, note)
	}
	return 0
}
