package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"runtime/debug"
	"syscall"
	"time"

	"vlt/internal/netfault"
	"vlt/internal/report"
	"vlt/internal/runner"
	"vlt/internal/stats"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// signalNotify is indirect so the smoke test can inject a fake signal
// instead of signalling the test process.
var signalNotify = signal.Notify

// run is the testable entry point: it parses args, proxies until a
// termination signal, and returns the process exit code.
func run(args []string, stdout, stderr io.Writer) (code int) {
	defer func() {
		if r := recover(); r != nil {
			fmt.Fprint(stderr, report.Diagnose("vltfault",
				&runner.PanicError{Key: "vltfault", Value: r, Stack: debug.Stack()}))
			code = 1
		}
	}()

	fs := flag.NewFlagSet("vltfault", flag.ContinueOnError)
	fs.SetOutput(stderr)
	target := fs.String("target", "", "upstream host:port to forward to (required)")
	listen := fs.String("listen", "127.0.0.1:0", "proxy listen address (port 0 picks a free port)")
	seed := fs.Int64("seed", 1, "fault-schedule seed")
	drop := fs.Float64("drop", 0, "P(close the connection on accept)")
	delay := fs.Float64("delay", 0, "P(stall the exchange)")
	delayBy := fs.Duration("delay-by", 50*time.Millisecond, "stall duration for -delay")
	inject := fs.Float64("inject", 0, "P(answer a canned 503 without forwarding)")
	reset := fs.Float64("reset", 0, "P(cut the response with a TCP RST mid-body)")
	truncate := fs.Float64("truncate", 0, "P(end the response cleanly mid-body)")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() != 0 {
		fmt.Fprintf(stderr, "vltfault: unexpected argument %q\n", fs.Arg(0))
		fs.Usage()
		return 2
	}
	if *target == "" {
		fmt.Fprintln(stderr, "vltfault: -target is required")
		fs.Usage()
		return 2
	}
	for _, p := range []struct {
		name string
		v    float64
	}{{"drop", *drop}, {"delay", *delay}, {"inject", *inject}, {"reset", *reset}, {"truncate", *truncate}} {
		if p.v < 0 || p.v > 1 {
			fmt.Fprintf(stderr, "vltfault: -%s %v out of range [0, 1]\n", p.name, p.v)
			return 2
		}
	}

	reg := stats.New()
	p, err := netfault.New(netfault.Config{
		Target: *target, Listen: *listen, Seed: *seed,
		Drop: *drop, Delay: *delay, DelayBy: *delayBy,
		Inject: *inject, Reset: *reset, Truncate: *truncate,
		Registry: reg,
	})
	if err != nil {
		fmt.Fprintln(stderr, "vltfault:", err)
		return 1
	}
	fmt.Fprintf(stdout, "vltfault: proxying %s -> %s (seed %d)\n", p.Addr(), *target, *seed)

	sigc := make(chan os.Signal, 1)
	signalNotify(sigc, os.Interrupt, syscall.SIGTERM)
	sig := <-sigc
	fmt.Fprintf(stdout, "vltfault: %v: closing\n", sig)
	if err := p.Close(); err != nil {
		fmt.Fprintln(stderr, "vltfault:", err)
		code = 1
	}
	fmt.Fprintf(stdout, "vltfault: shutdown complete (%d faults injected)\n%s",
		p.Faults(), reg.Snapshot())
	return code
}
