// Command vltfault runs the internal/netfault chaos proxy standalone: a
// TCP forwarder that injects faults (dropped connections, delays,
// canned 503s, mid-body resets and truncations) between a client and a
// vltd daemon with per-rule probabilities from a seeded source. It is
// the manual counterpart of the chaos harness the e2e tests use: point
// a vltd coordinator's -peers at a vltfault in front of a real peer and
// watch the fleet's retries, breaker trips and local fallbacks on
// /metricsz.
//
// Usage:
//
//	vltfault -target 127.0.0.1:8317 [-listen 127.0.0.1:0] [-seed N]
//	         [-drop P] [-delay P] [-inject P] [-reset P] [-truncate P]
//
// On SIGINT/SIGTERM the proxy severs every live connection and prints
// its fault tally.
package main
