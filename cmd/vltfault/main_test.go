package main

import (
	"bytes"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"regexp"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"
)

// syncBuffer is a goroutine-safe bytes.Buffer for capturing the
// proxy's output while it runs.
type syncBuffer struct {
	mu sync.Mutex
	b  bytes.Buffer
}

func (s *syncBuffer) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.Write(p)
}

func (s *syncBuffer) String() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.String()
}

// TestUsageErrors pins the exit codes for bad invocations.
func TestUsageErrors(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-no-such-flag"}, &out, &errb); code != 2 {
		t.Fatalf("bad flag: exit %d, want 2", code)
	}
	if code := run([]string{}, &out, &errb); code != 2 {
		t.Fatalf("missing -target: exit %d, want 2", code)
	}
	if code := run([]string{"-target", "127.0.0.1:1", "-drop", "1.5"}, &out, &errb); code != 2 {
		t.Fatalf("probability out of range: exit %d, want 2", code)
	}
	if code := run([]string{"-target", "127.0.0.1:1", "extra"}, &out, &errb); code != 2 {
		t.Fatalf("positional arg: exit %d, want 2", code)
	}
}

// TestProxyLifecycle boots the proxy in front of a stub upstream,
// forwards one request through it, then delivers a (fake) SIGTERM and
// verifies a clean exit with the fault tally.
func TestProxyLifecycle(t *testing.T) {
	upstream := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprintln(w, `{"status":"ok"}`)
	}))
	defer upstream.Close()
	target := strings.TrimPrefix(upstream.URL, "http://")

	sigc := make(chan chan<- os.Signal, 1)
	signalNotify = func(c chan<- os.Signal, _ ...os.Signal) { sigc <- c }
	defer func() { signalNotify = nil }()

	var out, errb syncBuffer
	done := make(chan int, 1)
	go func() { done <- run([]string{"-target", target}, &out, &errb) }()

	addrRE := regexp.MustCompile(`proxying ([^\s]+) ->`)
	var addr string
	deadline := time.Now().Add(5 * time.Second)
	for addr == "" {
		if m := addrRE.FindStringSubmatch(out.String()); m != nil {
			addr = m[1]
		} else if time.Now().After(deadline) {
			t.Fatalf("no proxying line; stdout=%q stderr=%q", out.String(), errb.String())
		} else {
			time.Sleep(5 * time.Millisecond)
		}
	}
	sig := <-sigc

	resp, err := http.Get("http://" + addr + "/healthz")
	if err != nil {
		t.Fatalf("GET through proxy: %v", err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if !strings.Contains(string(body), `"ok"`) {
		t.Fatalf("proxied body = %q", body)
	}

	sig <- syscall.SIGTERM
	select {
	case code := <-done:
		if code != 0 {
			t.Fatalf("exit %d; stderr=%q", code, errb.String())
		}
	case <-time.After(10 * time.Second):
		t.Fatal("proxy did not exit after SIGTERM")
	}
	if s := out.String(); !strings.Contains(s, "shutdown complete") || !strings.Contains(s, "forwarded 1") {
		t.Fatalf("missing shutdown tally in output:\n%s", s)
	}
}
