// Command vltasm assembles a textual program into a binary program image
// that cmd/vltrun executes and cmd/vltdis disassembles. Every program is
// statically verified (internal/vet) after assembly; findings fail the
// build unless -no-vet is given.
//
// Usage:
//
//	vltasm [-o prog.vltp] [-no-vet] prog.vasm
package main
