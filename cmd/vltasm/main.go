// Command vltasm assembles a textual program into a binary program image
// that cmd/vltrun executes and cmd/vltdis disassembles.
//
// Usage:
//
//	vltasm [-o prog.vltp] prog.vasm
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"vlt/internal/asm"
)

func main() {
	out := flag.String("o", "", "output image path (default: input with .vltp)")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "vltasm: usage: vltasm [-o out.vltp] prog.vasm")
		os.Exit(2)
	}
	in := flag.Arg(0)
	src, err := os.ReadFile(in)
	if err != nil {
		fmt.Fprintln(os.Stderr, "vltasm:", err)
		os.Exit(1)
	}
	prog, err := asm.ParseText(in, string(src))
	if err != nil {
		fmt.Fprintln(os.Stderr, "vltasm:", err)
		os.Exit(1)
	}
	path := *out
	if path == "" {
		path = strings.TrimSuffix(in, ".vasm") + ".vltp"
	}
	if err := os.WriteFile(path, prog.SaveImage(), 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "vltasm:", err)
		os.Exit(1)
	}
	fmt.Printf("%s: %d instructions, %d data segments, %d symbols -> %s\n",
		prog.Name, len(prog.Code), len(prog.Segments), len(prog.Symbols), path)
}
