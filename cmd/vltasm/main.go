package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"runtime/debug"
	"strings"

	"vlt/internal/asm"
	"vlt/internal/report"
	"vlt/internal/runner"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is the testable entry point: it parses args, assembles, writes to
// stdout/stderr and returns the process exit code.
func run(args []string, stdout, stderr io.Writer) (code int) {
	defer func() {
		if r := recover(); r != nil {
			fmt.Fprint(stderr, report.Diagnose("vltasm",
				&runner.PanicError{Key: "vltasm", Value: r, Stack: debug.Stack()}))
			code = 2
		}
	}()

	fs := flag.NewFlagSet("vltasm", flag.ContinueOnError)
	fs.SetOutput(stderr)
	out := fs.String("o", "", "output image path (default: input with .vltp)")
	noVet := fs.Bool("no-vet", false, "skip static verification of the assembled program")
	fs.Usage = func() {
		fmt.Fprintln(stderr, "usage: vltasm [-o out.vltp] [-no-vet] prog.vasm")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() != 1 {
		fs.Usage()
		return 2
	}
	in := fs.Arg(0)
	src, err := os.ReadFile(in)
	if err != nil {
		fmt.Fprintln(stderr, "vltasm:", err)
		return 1
	}
	prog, err := asm.ParseText(in, string(src))
	if err != nil {
		fmt.Fprintln(stderr, "vltasm:", err)
		return 1
	}
	if !*noVet {
		if err := prog.VetErr(); err != nil {
			fmt.Fprint(stderr, report.Diagnose("vltasm", err))
			return 1
		}
	}
	path := *out
	if path == "" {
		path = strings.TrimSuffix(in, ".vasm") + ".vltp"
	}
	if err := os.WriteFile(path, prog.SaveImage(), 0o644); err != nil {
		fmt.Fprintln(stderr, "vltasm:", err)
		return 1
	}
	fmt.Fprintf(stdout, "%s: %d instructions, %d data segments, %d symbols -> %s\n",
		prog.Name, len(prog.Code), len(prog.Segments), len(prog.Symbols), path)
	return 0
}
