package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const cleanSrc = `# minimal vet-clean program
.alloc buf 8
movi r1, 8
setvl r2, r1
movi r3, &buf
vld v1, (r3)
vadd v2, v1, v1
vst v2, (r3)
halt
`

func TestRunAssemble(t *testing.T) {
	dir := t.TempDir()
	in := filepath.Join(dir, "prog.vasm")
	if err := os.WriteFile(in, []byte(cleanSrc), 0o644); err != nil {
		t.Fatal(err)
	}
	var out, errOut strings.Builder
	if code := run([]string{in}, &out, &errOut); code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errOut.String())
	}
	if !strings.Contains(out.String(), "instructions") {
		t.Errorf("missing summary line:\n%s", out.String())
	}
	if _, err := os.Stat(filepath.Join(dir, "prog.vltp")); err != nil {
		t.Errorf("image not written: %v", err)
	}
}

// TestRunVetRejects: assembly succeeds but verification fails, so the
// image must not be written.
func TestRunVetRejects(t *testing.T) {
	dir := t.TempDir()
	in := filepath.Join(dir, "broken.vasm")
	if err := os.WriteFile(in, []byte("viota v1\nhalt\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	var out, errOut strings.Builder
	if code := run([]string{in}, &out, &errOut); code != 1 {
		t.Fatalf("exit %d, want 1; stderr: %s", code, errOut.String())
	}
	if !strings.Contains(errOut.String(), "vl-unset") {
		t.Errorf("stderr missing vl-unset diagnostic:\n%s", errOut.String())
	}
	if _, err := os.Stat(filepath.Join(dir, "broken.vltp")); err == nil {
		t.Error("image written despite vet findings")
	}
}

// TestRunNoVet: -no-vet restores the old assemble-only behavior.
func TestRunNoVet(t *testing.T) {
	dir := t.TempDir()
	in := filepath.Join(dir, "broken.vasm")
	if err := os.WriteFile(in, []byte("viota v1\nhalt\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	var out, errOut strings.Builder
	if code := run([]string{"-no-vet", in}, &out, &errOut); code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errOut.String())
	}
	if _, err := os.Stat(filepath.Join(dir, "broken.vltp")); err != nil {
		t.Errorf("image not written with -no-vet: %v", err)
	}
}

func TestRunErrors(t *testing.T) {
	var out, errOut strings.Builder
	if code := run(nil, &out, &errOut); code != 2 {
		t.Errorf("no args: exit %d, want 2", code)
	}
	if code := run([]string{filepath.Join(t.TempDir(), "missing.vasm")}, &out, &errOut); code != 1 {
		t.Errorf("missing file: exit %d, want 1", code)
	}
}
