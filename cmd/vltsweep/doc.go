// Command vltsweep runs a workload x machine x scale grid against a
// vltd daemon (or a fleet coordinator node) over POST /v1/sweep and
// renders the NDJSON stream as it arrives: one line per cell, then a
// summary from the stream's trailer. The underlying client retries
// transient failures with backoff, honors Retry-After, and detects a
// truncated stream by the missing trailer — a partial sweep exits
// nonzero instead of passing silently.
//
// Usage:
//
//	vltsweep -workloads mxm,fir8 -machines base,vlt8 [flags]
//
// Cells that fail simulation occupy their line with the server's typed
// error and do not stop the sweep; vltsweep exits 1 if any cell erred
// (or 2 on usage/transport failures).
package main
