package main

import (
	"bytes"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

// sweepStub serves a canned NDJSON stream on /v1/sweep.
func sweepStub(t *testing.T, lines ...string) *httptest.Server {
	t.Helper()
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/v1/sweep" || r.Method != http.MethodPost {
			http.NotFound(w, r)
			return
		}
		w.Header().Set("Content-Type", "application/x-ndjson")
		for _, l := range lines {
			fmt.Fprintln(w, l)
		}
	}))
	t.Cleanup(srv.Close)
	return srv
}

// TestUsageErrors pins the exit codes for bad invocations.
func TestUsageErrors(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-no-such-flag"}, &out, &errb); code != 2 {
		t.Fatalf("bad flag: exit %d, want 2", code)
	}
	if code := run([]string{}, &out, &errb); code != 2 {
		t.Fatalf("missing grid flags: exit %d, want 2", code)
	}
	if code := run([]string{"-workloads", "mxm", "-machines", "base", "-scales", "zero"}, &out, &errb); code != 2 {
		t.Fatalf("bad scales: exit %d, want 2", code)
	}
	if code := run([]string{"-workloads", "mxm", "-machines", "base", "positional"}, &out, &errb); code != 2 {
		t.Fatalf("positional arg: exit %d, want 2", code)
	}
}

// TestSweepTable renders a clean sweep and exits 0.
func TestSweepTable(t *testing.T) {
	srv := sweepStub(t,
		`{"index":0,"workload":"mxm","machine":"base","result":{"workload":"mxm","machine":"base","cycles":1234,"ipc":1.5,"util":{"busy_pct":80},"verified":true}}`,
		`{"done":true,"cells":1,"errors":0}`,
	)
	var out, errb bytes.Buffer
	code := run([]string{"-server", srv.URL, "-workloads", "mxm", "-machines", "base"}, &out, &errb)
	if code != 0 {
		t.Fatalf("exit %d; stderr=%q", code, errb.String())
	}
	s := out.String()
	if !strings.Contains(s, "mxm/base") || !strings.Contains(s, "cycles=1234") {
		t.Fatalf("table missing cell row:\n%s", s)
	}
	if !strings.Contains(s, "1 cells, 0 errors") {
		t.Fatalf("missing summary:\n%s", s)
	}
}

// TestSweepErrorCellExitsNonzero: a failing cell renders its typed error
// and flips the exit code without killing the sweep.
func TestSweepErrorCellExitsNonzero(t *testing.T) {
	srv := sweepStub(t,
		`{"index":0,"workload":"mxm","machine":"base","result":{"workload":"mxm","machine":"base","cycles":7,"verified":true}}`,
		`{"index":1,"workload":"mxm","machine":"bogus","error":{"code":"simulation_failed","message":"boom","cell":"mxm/bogus"}}`,
		`{"done":true,"cells":2,"errors":1}`,
	)
	var out, errb bytes.Buffer
	code := run([]string{"-server", srv.URL, "-workloads", "mxm", "-machines", "base,bogus"}, &out, &errb)
	if code != 1 {
		t.Fatalf("exit %d, want 1; stderr=%q", code, errb.String())
	}
	s := out.String()
	if !strings.Contains(s, "ERROR simulation_failed: boom") {
		t.Fatalf("missing error row:\n%s", s)
	}
	if !strings.Contains(s, "2 cells, 1 errors") {
		t.Fatalf("missing summary:\n%s", s)
	}
}

// TestSweepJSONPassthrough re-emits the cell lines verbatim-ish.
func TestSweepJSONPassthrough(t *testing.T) {
	srv := sweepStub(t,
		`{"index":0,"workload":"mxm","machine":"base","result":{"cycles":9}}`,
		`{"done":true,"cells":1,"errors":0}`,
	)
	var out, errb bytes.Buffer
	code := run([]string{"-server", srv.URL, "-workloads", "mxm", "-machines", "base", "-json"}, &out, &errb)
	if code != 0 {
		t.Fatalf("exit %d; stderr=%q", code, errb.String())
	}
	if !strings.Contains(out.String(), `"result":{"cycles":9}`) {
		t.Fatalf("json passthrough missing result:\n%s", out.String())
	}
}

// TestSweepTruncationExits2: a stream with no trailer is a transport
// failure, not a quiet success.
func TestSweepTruncationExits2(t *testing.T) {
	srv := sweepStub(t,
		`{"index":0,"workload":"mxm","machine":"base","result":{"cycles":9}}`,
	)
	var out, errb bytes.Buffer
	code := run([]string{"-server", srv.URL, "-workloads", "mxm", "-machines", "base"}, &out, &errb)
	if code != 2 {
		t.Fatalf("exit %d, want 2; stderr=%q", code, errb.String())
	}
	if !strings.Contains(errb.String(), "truncated") {
		t.Fatalf("stderr does not mention truncation:\n%s", errb.String())
	}
}
