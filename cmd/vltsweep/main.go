package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime/debug"
	"strconv"
	"strings"
	"time"

	"vlt/internal/api"
	"vlt/internal/report"
	"vlt/internal/runner"
	"vlt/internal/vltclient"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is the testable entry point: it parses args, sweeps, writes to
// stdout/stderr and returns the process exit code.
func run(args []string, stdout, stderr io.Writer) (code int) {
	defer func() {
		if r := recover(); r != nil {
			fmt.Fprint(stderr, report.Diagnose("vltsweep",
				&runner.PanicError{Key: "vltsweep", Value: r, Stack: debug.Stack()}))
			code = 2
		}
	}()

	fs := flag.NewFlagSet("vltsweep", flag.ContinueOnError)
	fs.SetOutput(stderr)
	server := fs.String("server", "http://127.0.0.1:8317", "vltd base URL")
	workloadsFlag := fs.String("workloads", "", "comma-separated workload names (required)")
	machinesFlag := fs.String("machines", "", "comma-separated machine names (required)")
	scalesFlag := fs.String("scales", "", "comma-separated problem scales (default 1)")
	lanes := fs.Int("lanes", 0, "vector lane override (0 = machine default)")
	threads := fs.Int("threads", 0, "software thread override (0 = workload default)")
	timeout := fs.Duration("timeout", 10*time.Minute, "whole-sweep deadline (propagated to the server)")
	retries := fs.Int("retries", 3, "transient-failure retry budget")
	jsonOut := fs.Bool("json", false, "emit the raw NDJSON lines instead of the table")
	fs.Usage = func() {
		fmt.Fprintln(stderr, "usage: vltsweep -workloads a,b -machines x,y [flags]")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() != 0 {
		fmt.Fprintf(stderr, "vltsweep: unexpected argument %q\n", fs.Arg(0))
		fs.Usage()
		return 2
	}
	if *workloadsFlag == "" || *machinesFlag == "" {
		fs.Usage()
		return 2
	}
	scales, err := parseScales(*scalesFlag)
	if err != nil {
		fmt.Fprintln(stderr, "vltsweep:", err)
		return 2
	}

	req := api.SweepRequest{
		Workloads: splitList(*workloadsFlag),
		Machines:  splitList(*machinesFlag),
		Scales:    scales,
		Lanes:     *lanes,
		Threads:   *threads,
	}
	client := vltclient.New(vltclient.Config{
		BaseURL:    strings.TrimRight(*server, "/"),
		MaxRetries: *retries,
	})
	ctx, cancel := context.WithTimeout(context.Background(), *timeout)
	defer cancel()

	errCells := 0
	trailer, err := client.Sweep(ctx, req, func(cell api.SweepCell) error {
		if *jsonOut {
			line, err := json.Marshal(cell)
			if err != nil {
				return err
			}
			fmt.Fprintf(stdout, "%s\n", line)
			return nil
		}
		name := api.RunRequest{Workload: cell.Workload, Machine: cell.Machine, Scale: cell.Scale}.Cell()
		if cell.Error != nil {
			errCells++
			fmt.Fprintf(stdout, "%-24s ERROR %s: %s\n", name, cell.Error.Code, cell.Error.Message)
			return nil
		}
		var res api.RunResponse
		if err := json.Unmarshal(cell.Result, &res); err != nil {
			return fmt.Errorf("cell %s: bad result: %w", name, err)
		}
		fmt.Fprintf(stdout, "%-24s cycles=%-12d ipc=%-6.3f busy=%5.1f%% verified=%t\n",
			name, res.Cycles, res.IPC, res.Util.BusyPct, res.Verified)
		return nil
	})
	if err != nil {
		fmt.Fprint(stderr, report.Diagnose("vltsweep", err))
		return 2
	}
	fmt.Fprintf(stdout, "vltsweep: %d cells, %d errors\n", trailer.Cells, trailer.Errors)
	if trailer.Errors > 0 || errCells > 0 {
		return 1
	}
	return 0
}

// splitList parses a comma-separated flag into trimmed names.
func splitList(s string) []string {
	var out []string
	for _, f := range strings.Split(s, ",") {
		if f = strings.TrimSpace(f); f != "" {
			out = append(out, f)
		}
	}
	return out
}

// parseScales parses the -scales flag ("" = server default of 1).
func parseScales(s string) ([]int, error) {
	if s == "" {
		return nil, nil
	}
	var out []int
	for _, f := range splitList(s) {
		n, err := strconv.Atoi(f)
		if err != nil || n < 1 {
			return nil, fmt.Errorf("bad scale %q: want a positive integer", f)
		}
		out = append(out, n)
	}
	return out, nil
}
