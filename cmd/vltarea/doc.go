// Command vltarea prints the paper's area model: the component breakdown
// (Table 1) and the area overhead of every VLT configuration over the
// base vector processor (Table 2).
package main
