package main

import (
	"fmt"
	"io"
	"os"

	"vlt"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is the testable entry point: it writes the tables to stdout and
// returns the process exit code.
func run(args []string, stdout, stderr io.Writer) int {
	if len(args) != 0 {
		fmt.Fprintln(stderr, "vltarea: usage: vltarea (no arguments)")
		return 2
	}
	fmt.Fprintln(stdout, vlt.Table1String())
	fmt.Fprintln(stdout, vlt.Table2String())
	return 0
}
