package main

import (
	"strings"
	"testing"
)

func TestRunPrintsBothTables(t *testing.T) {
	var out, errOut strings.Builder
	if code := run(nil, &out, &errOut); code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errOut.String())
	}
	got := out.String()
	for _, want := range []string{
		"Table 1: area breakdown for vector processor components",
		"component",
		"area (mm^2)",
		"Table 2",
		"V4-CMP",
	} {
		if !strings.Contains(got, want) {
			t.Errorf("output missing %q:\n%s", want, got)
		}
	}
}

func TestRunRejectsArguments(t *testing.T) {
	var out, errOut strings.Builder
	if code := run([]string{"extra"}, &out, &errOut); code != 2 {
		t.Errorf("exit %d, want 2", code)
	}
	if !strings.Contains(errOut.String(), "usage") {
		t.Errorf("stderr missing usage: %s", errOut.String())
	}
}
