// Command vltdis disassembles a binary program image (produced by
// cmd/vltasm) back into assembly text that cmd/vltasm accepts.
//
// Usage:
//
//	vltdis prog.vltp
package main

import (
	"fmt"
	"os"

	"vlt/internal/asm"
)

func main() {
	if len(os.Args) != 2 {
		fmt.Fprintln(os.Stderr, "vltdis: usage: vltdis prog.vltp")
		os.Exit(2)
	}
	data, err := os.ReadFile(os.Args[1])
	if err != nil {
		fmt.Fprintln(os.Stderr, "vltdis:", err)
		os.Exit(1)
	}
	prog, err := asm.LoadImage(data)
	if err != nil {
		fmt.Fprintln(os.Stderr, "vltdis:", err)
		os.Exit(1)
	}
	fmt.Printf("# program %q: %d instructions\n", prog.Name, len(prog.Code))
	fmt.Print(prog.Disassemble())
}
