package main

import (
	"fmt"
	"io"
	"os"
	"runtime/debug"

	"vlt/internal/asm"
	"vlt/internal/report"
	"vlt/internal/runner"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is the testable entry point: it parses args, disassembles, writes
// to stdout/stderr and returns the process exit code.
func run(args []string, stdout, stderr io.Writer) (code int) {
	defer func() {
		if r := recover(); r != nil {
			fmt.Fprint(stderr, report.Diagnose("vltdis",
				&runner.PanicError{Key: "vltdis", Value: r, Stack: debug.Stack()}))
			code = 2
		}
	}()

	if len(args) != 1 {
		fmt.Fprintln(stderr, "vltdis: usage: vltdis prog.vltp")
		return 2
	}
	data, err := os.ReadFile(args[0])
	if err != nil {
		fmt.Fprintln(stderr, "vltdis:", err)
		return 1
	}
	prog, err := asm.LoadImage(data)
	if err != nil {
		fmt.Fprintln(stderr, "vltdis:", err)
		return 1
	}
	fmt.Fprintf(stdout, "# program %q: %d instructions\n", prog.Name, len(prog.Code))
	fmt.Fprint(stdout, prog.Disassemble())
	return 0
}
