// Command vltdis disassembles a binary program image (produced by
// cmd/vltasm) back into assembly text that cmd/vltasm accepts.
//
// Usage:
//
//	vltdis prog.vltp
package main
