package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"vlt/internal/asm"
	"vlt/internal/isa"
)

func TestRunRoundTrip(t *testing.T) {
	b := asm.NewBuilder("roundtrip")
	buf := b.Alloc("buf", 8)
	b.MovI(isa.R(1), 8)
	b.SetVL(isa.R(2), isa.R(1))
	b.MovA(isa.R(3), buf)
	b.VLd(isa.V(1), isa.R(3))
	b.Halt()
	prog := b.MustAssemble()

	path := filepath.Join(t.TempDir(), "prog.vltp")
	if err := os.WriteFile(path, prog.SaveImage(), 0o644); err != nil {
		t.Fatal(err)
	}
	var out, errOut strings.Builder
	if code := run([]string{path}, &out, &errOut); code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errOut.String())
	}
	got := out.String()
	for _, want := range []string{`program "roundtrip"`, "setvl", "vld", "halt"} {
		if !strings.Contains(got, want) {
			t.Errorf("output missing %q:\n%s", want, got)
		}
	}
}

func TestRunErrors(t *testing.T) {
	var out, errOut strings.Builder
	if code := run(nil, &out, &errOut); code != 2 {
		t.Errorf("no args: exit %d, want 2", code)
	}
	if code := run([]string{filepath.Join(t.TempDir(), "missing.vltp")}, &out, &errOut); code != 1 {
		t.Errorf("missing file: exit %d, want 1", code)
	}
	bad := filepath.Join(t.TempDir(), "bad.vltp")
	if err := os.WriteFile(bad, []byte("not an image"), 0o644); err != nil {
		t.Fatal(err)
	}
	if code := run([]string{bad}, &out, &errOut); code != 1 {
		t.Errorf("bad image: exit %d, want 1", code)
	}
}
