package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime/debug"
	"strings"

	"vlt/internal/asm"
	"vlt/internal/report"
	"vlt/internal/runner"
	"vlt/internal/vet"
	"vlt/internal/workloads"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// vetReport is the JSON shape for one vetted program. Counts uses the
// internal/stats naming scheme ("vet.findings.<kind>").
type vetReport struct {
	Program  string             `json:"program"`
	Findings []vet.Finding      `json:"findings"`
	Counts   map[string]float64 `json:"counts"`
}

// run is the testable entry point: it parses args, vets, writes to
// stdout/stderr and returns the process exit code.
func run(args []string, stdout, stderr io.Writer) (code int) {
	defer func() {
		if r := recover(); r != nil {
			fmt.Fprint(stderr, report.Diagnose("vltvet",
				&runner.PanicError{Key: "vltvet", Value: r, Stack: debug.Stack()}))
			code = 2
		}
	}()

	fs := flag.NewFlagSet("vltvet", flag.ContinueOnError)
	fs.SetOutput(stderr)
	workloadsFlag := fs.String("workloads", "", `vet built-in kernels: "all" or comma-separated names`)
	threads := fs.Int("threads", 1, "software thread count for -workloads builds")
	jsonOut := fs.Bool("json", false, "emit findings and per-kind counts as JSON")
	fs.Usage = func() {
		fmt.Fprintln(stderr, "usage: vltvet [flags] [prog.vasm | prog.vltp ...]")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *workloadsFlag == "" && fs.NArg() == 0 {
		fs.Usage()
		return 2
	}

	var progs []*asm.Program
	if *workloadsFlag != "" {
		ws, err := selectWorkloads(*workloadsFlag)
		if err != nil {
			fmt.Fprintln(stderr, "vltvet:", err)
			return 2
		}
		for _, w := range ws {
			progs = append(progs, w.Build(workloads.Params{Threads: *threads}))
		}
	}
	for _, path := range fs.Args() {
		prog, err := loadProgram(path)
		if err != nil {
			fmt.Fprint(stderr, report.Diagnose("vltvet", err))
			return 1
		}
		progs = append(progs, prog)
	}

	reports := make([]vetReport, len(progs))
	total := 0
	for i, prog := range progs {
		findings := prog.Vet()
		total += len(findings)
		reports[i] = vetReport{
			Program:  prog.Name,
			Findings: findings,
			Counts:   vet.Count(findings),
		}
	}

	if *jsonOut {
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(reports); err != nil {
			fmt.Fprintln(stderr, "vltvet:", err)
			return 2
		}
	} else {
		for _, r := range reports {
			if len(r.Findings) == 0 {
				fmt.Fprintf(stdout, "%s: clean\n", r.Program)
				continue
			}
			fmt.Fprint(stderr, report.Diagnose("vltvet",
				&vet.Error{Program: r.Program, Findings: r.Findings}))
		}
	}
	if total > 0 {
		fmt.Fprintf(stderr, "vltvet: %d finding(s) in %d program(s)\n", total, len(progs))
		return 1
	}
	return 0
}

// selectWorkloads resolves the -workloads argument.
func selectWorkloads(arg string) ([]*workloads.Workload, error) {
	if arg == "all" {
		return workloads.All(), nil
	}
	var out []*workloads.Workload
	for _, name := range strings.Split(arg, ",") {
		w, err := workloads.ByName(strings.TrimSpace(name))
		if err != nil {
			return nil, err
		}
		out = append(out, w)
	}
	return out, nil
}

// loadProgram reads an assembly text file or binary image.
func loadProgram(path string) (*asm.Program, error) {
	src, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	if len(src) >= 4 && string(src[:4]) == "VLTP" {
		return asm.LoadImage(src)
	}
	return asm.ParseText(path, string(src))
}
