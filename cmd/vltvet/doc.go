// Command vltvet statically verifies assembled VLT programs with the
// internal/vet pipeline: CFG structure, use-before-def, dead writes,
// the 1 <= VL <= 64 proof, and static memory bounds. It exits 1 when
// any program has findings.
//
// Usage:
//
//	vltvet [flags] [prog.vasm | prog.vltp ...]
//	vltvet -workloads all
//
// Positional arguments are assembly text files or binary images
// (vltasm output). -workloads vets the built-in workload kernels
// instead: "all" or a comma-separated list of names, built with
// -threads software threads.
package main
