package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunWorkloadsAll(t *testing.T) {
	var out, errOut strings.Builder
	if code := run([]string{"-workloads", "all"}, &out, &errOut); code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errOut.String())
	}
	got := out.String()
	for _, w := range []string{"mxm: clean", "sage: clean", "bt: clean", "barnes: clean"} {
		if !strings.Contains(got, w) {
			t.Errorf("output missing %q:\n%s", w, got)
		}
	}
}

func TestRunJSON(t *testing.T) {
	var out, errOut strings.Builder
	if code := run([]string{"-workloads", "mxm,bt", "-threads", "4", "-json"}, &out, &errOut); code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errOut.String())
	}
	var reports []struct {
		Program string             `json:"program"`
		Counts  map[string]float64 `json:"counts"`
	}
	if err := json.Unmarshal([]byte(out.String()), &reports); err != nil {
		t.Fatalf("bad JSON: %v\n%s", err, out.String())
	}
	if len(reports) != 2 || reports[0].Program != "mxm" || reports[1].Program != "bt" {
		t.Fatalf("unexpected reports: %+v", reports)
	}
	for _, r := range reports {
		if r.Counts["vet.findings"] != 0 {
			t.Errorf("%s: expected zero findings, got %v", r.Program, r.Counts)
		}
	}
}

func TestRunBrokenFile(t *testing.T) {
	// A program whose vector op runs before any SETVL.
	src := "viota v1\nhalt\n"
	path := filepath.Join(t.TempDir(), "broken.vasm")
	if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	var out, errOut strings.Builder
	if code := run([]string{path}, &out, &errOut); code != 1 {
		t.Fatalf("exit %d, want 1; stderr: %s", code, errOut.String())
	}
	got := errOut.String()
	for _, want := range []string{"failed static verification", "vl-unset", "finding(s)"} {
		if !strings.Contains(got, want) {
			t.Errorf("stderr missing %q:\n%s", want, got)
		}
	}
}

func TestRunErrors(t *testing.T) {
	var out, errOut strings.Builder
	if code := run(nil, &out, &errOut); code != 2 {
		t.Errorf("no args: exit %d, want 2", code)
	}
	errOut.Reset()
	if code := run([]string{"-workloads", "nope"}, &out, &errOut); code != 2 {
		t.Errorf("unknown workload: exit %d, want 2", code)
	}
	errOut.Reset()
	if code := run([]string{filepath.Join(t.TempDir(), "missing.vasm")}, &out, &errOut); code != 1 {
		t.Errorf("missing file: exit %d, want 1", code)
	}
}
