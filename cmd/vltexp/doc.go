// Command vltexp regenerates the tables and figures of "Vector Lane
// Threading" (ICPP 2006) on this repository's simulator.
//
// Usage:
//
//	vltexp [-scale N] [-jobs N] [-progress] [-fig 1|3|4|5|6] [-tab 1|2|3|4] [-all]
//
// Without flags it prints everything (equivalent to -all). Simulations
// fan out over the parallel experiment engine; -jobs 1 forces the legacy
// serial path and -progress reports completed/total cells on stderr.
package main
