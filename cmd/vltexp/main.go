// Command vltexp regenerates the tables and figures of "Vector Lane
// Threading" (ICPP 2006) on this repository's simulator.
//
// Usage:
//
//	vltexp [-scale N] [-fig 1|3|4|5|6] [-tab 1|2|3|4] [-all]
//
// Without flags it prints everything (equivalent to -all).
package main

import (
	"flag"
	"fmt"
	"os"

	"vlt"
)

func main() {
	scale := flag.Int("scale", 1, "problem size multiplier")
	fig := flag.Int("fig", 0, "print one figure (1, 3, 4, 5 or 6)")
	tab := flag.Int("tab", 0, "print one table (1, 2, 3 or 4)")
	ext := flag.Bool("ext", false, "print the extension studies (16 lanes, phase switching)")
	jsonOut := flag.Bool("json", false, "emit every result as JSON (for plotting scripts)")
	all := flag.Bool("all", false, "print every table and figure")
	flag.Parse()

	if *fig == 0 && *tab == 0 && !*ext && !*jsonOut {
		*all = true
	}

	die := func(err error) {
		fmt.Fprintln(os.Stderr, "vltexp:", err)
		os.Exit(1)
	}
	printFig := func(n int) {
		switch n {
		case 1:
			d, err := vlt.Figure1(*scale)
			if err != nil {
				die(err)
			}
			fmt.Println(d)
		case 3:
			d, err := vlt.Figure3(*scale)
			if err != nil {
				die(err)
			}
			fmt.Println(d)
		case 4:
			d, err := vlt.Figure4(*scale)
			if err != nil {
				die(err)
			}
			fmt.Println(d)
		case 5:
			d, err := vlt.Figure5(*scale)
			if err != nil {
				die(err)
			}
			fmt.Println(d)
		case 6:
			d, err := vlt.Figure6(*scale)
			if err != nil {
				die(err)
			}
			fmt.Println(d)
		default:
			die(fmt.Errorf("no figure %d (the paper's evaluation has figures 1, 3, 4, 5, 6)", n))
		}
	}
	printTab := func(n int) {
		switch n {
		case 1:
			fmt.Println(vlt.Table1String())
		case 2:
			fmt.Println(vlt.Table2String())
		case 3:
			fmt.Println(vlt.Table3String())
		case 4:
			s, err := vlt.Table4String(*scale)
			if err != nil {
				die(err)
			}
			fmt.Println(s)
		default:
			die(fmt.Errorf("no table %d (tables 1-4)", n))
		}
	}

	printExt := func() {
		d16, err := vlt.Extension16Lanes(*scale)
		if err != nil {
			die(err)
		}
		fmt.Println(d16)
		dps, err := vlt.ExtensionPhaseSwitching(*scale)
		if err != nil {
			die(err)
		}
		fmt.Println(dps)
	}

	if *jsonOut {
		data, err := vlt.MarshalAll(*scale)
		if err != nil {
			die(err)
		}
		fmt.Println(string(data))
		return
	}

	if *all {
		for _, n := range []int{1, 2, 3, 4} {
			printTab(n)
		}
		for _, n := range []int{1, 3, 4, 5, 6} {
			printFig(n)
		}
		printExt()
		return
	}
	if *fig != 0 {
		printFig(*fig)
	}
	if *tab != 0 {
		printTab(*tab)
	}
	if *ext {
		printExt()
	}
}
