package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"runtime/debug"
	"runtime/pprof"
	"sync"

	"vlt"
	"vlt/internal/guard"
	"vlt/internal/report"
	"vlt/internal/runner"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is the testable entry point: it parses args, simulates, writes to
// stdout/stderr and returns the process exit code. A panic anywhere
// below renders as a diagnostic instead of crashing the process.
func run(args []string, stdout, stderr io.Writer) (code int) {
	defer func() {
		if r := recover(); r != nil {
			fmt.Fprint(stderr, report.Diagnose("vltexp",
				&runner.PanicError{Key: "vltexp", Value: r, Stack: debug.Stack()}))
			code = 1
		}
	}()

	fs := flag.NewFlagSet("vltexp", flag.ContinueOnError)
	fs.SetOutput(stderr)
	scale := fs.Int("scale", 1, "problem size multiplier")
	fig := fs.Int("fig", 0, "print one figure (1, 3, 4, 5 or 6)")
	tab := fs.Int("tab", 0, "print one table (1, 2, 3 or 4)")
	ext := fs.Bool("ext", false, "print the extension studies (16 lanes, phase switching)")
	jsonOut := fs.Bool("json", false, "emit every result as JSON (for plotting scripts)")
	metricsFor := fs.String("metrics", "", "dump the named workload's full metric registry and exit")
	machine := fs.String("machine", "base", "machine configuration for -metrics")
	all := fs.Bool("all", false, "print every table and figure")
	jobs := fs.Int("jobs", 0, "max concurrent simulations (0 = GOMAXPROCS, 1 = serial legacy path)")
	progress := fs.Bool("progress", false, "report completed/total simulation cells on stderr")
	stallLimit := fs.Uint64("stall-limit", 0, "abort a cell when no instruction retires for N cycles (0 = default)")
	auditFlag := fs.String("audit", "auto", "invariant auditor: auto, on, off")
	cpuProfile := fs.String("cpuprofile", "", "write a CPU profile to this file")
	memProfile := fs.String("memprofile", "", "write an allocation profile to this file at exit")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	usageErr := func(format string, a ...any) int {
		fmt.Fprintf(stderr, "vltexp: "+format+"\n", a...)
		fs.Usage()
		return 2
	}
	audit, err := guard.ParseAuditMode(*auditFlag)
	if err != nil {
		return usageErr("%v", err)
	}
	if fs.NArg() > 0 {
		return usageErr("unexpected argument %q", fs.Arg(0))
	}
	validFig := map[int]bool{1: true, 3: true, 4: true, 5: true, 6: true}
	if *fig != 0 && !validFig[*fig] {
		return usageErr("no figure %d (the paper's evaluation has figures 1, 3, 4, 5, 6)", *fig)
	}
	if *tab != 0 && (*tab < 1 || *tab > 4) {
		return usageErr("no table %d (tables 1-4)", *tab)
	}
	if *jobs < 0 {
		return usageErr("-jobs %d: want 0 (GOMAXPROCS) or a positive worker count", *jobs)
	}

	if *fig == 0 && *tab == 0 && !*ext && !*jsonOut && *metricsFor == "" {
		*all = true
	}

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			return usageErr("-cpuprofile: %v", err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			return usageErr("-cpuprofile: %v", err)
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
		}()
	}
	if *memProfile != "" {
		defer func() {
			f, err := os.Create(*memProfile)
			if err != nil {
				fmt.Fprintf(stderr, "vltexp: -memprofile: %v\n", err)
				return
			}
			defer f.Close()
			runtime.GC() // materialize the final live-heap statistics
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintf(stderr, "vltexp: -memprofile: %v\n", err)
			}
		}()
	}

	eng := vlt.NewEngine(*jobs)
	eng.SetGuard(*stallLimit, audit)
	if *progress {
		var mu sync.Mutex
		eng.SetProgress(func(done, total int) {
			mu.Lock()
			defer mu.Unlock()
			fmt.Fprintf(stderr, "\rvltexp: %d/%d cells simulated", done, total)
			if done == total {
				fmt.Fprintln(stderr)
			}
		})
	}

	printFig := func(n int) error {
		var d fmt.Stringer
		var err error
		switch n {
		case 1:
			d, err = eng.Figure1(*scale)
		case 3:
			d, err = eng.Figure3(*scale)
		case 4:
			d, err = eng.Figure4(*scale)
		case 5:
			d, err = eng.Figure5(*scale)
		case 6:
			d, err = eng.Figure6(*scale)
		}
		if err != nil {
			return err
		}
		fmt.Fprintln(stdout, d)
		return nil
	}
	printTab := func(n int) error {
		switch n {
		case 1:
			fmt.Fprintln(stdout, vlt.Table1String())
		case 2:
			fmt.Fprintln(stdout, vlt.Table2String())
		case 3:
			fmt.Fprintln(stdout, vlt.Table3String())
		case 4:
			s, err := eng.Table4String(*scale)
			if err != nil {
				return err
			}
			fmt.Fprintln(stdout, s)
		}
		return nil
	}
	printExt := func() error {
		d16, err := eng.Extension16Lanes(*scale)
		if err != nil {
			return err
		}
		fmt.Fprintln(stdout, d16)
		dps, err := eng.ExtensionPhaseSwitching(*scale)
		if err != nil {
			return err
		}
		fmt.Fprintln(stdout, dps)
		return nil
	}
	fail := func(err error) int {
		fmt.Fprint(stderr, report.Diagnose("vltexp", err))
		return 1
	}

	if *metricsFor != "" {
		// Machine-readable registry dump: one "name value" line per
		// metric, sorted by name (the golden-metrics test's format).
		res, err := vlt.Run(*metricsFor, vlt.Machine(*machine), vlt.Options{
			Scale: *scale, StallLimit: *stallLimit, Audit: audit,
		})
		if err != nil {
			return fail(err)
		}
		fmt.Fprint(stdout, res.Metrics.String())
		return 0
	}

	if *jsonOut {
		data, err := eng.MarshalAll(*scale)
		if err != nil {
			return fail(err)
		}
		fmt.Fprintln(stdout, string(data))
		return 0
	}

	if *all {
		// Warm the engine's cache with every driver running concurrently;
		// the ordered printing below then reads memoized cells. The serial
		// legacy path has no cache, so it simulates while printing.
		if !eng.Serial() {
			if _, err := eng.CollectAll(*scale); err != nil {
				return fail(err)
			}
		}
		for _, n := range []int{1, 2, 3, 4} {
			if err := printTab(n); err != nil {
				return fail(err)
			}
		}
		for _, n := range []int{1, 3, 4, 5, 6} {
			if err := printFig(n); err != nil {
				return fail(err)
			}
		}
		if err := printExt(); err != nil {
			return fail(err)
		}
		return 0
	}
	if *fig != 0 {
		if err := printFig(*fig); err != nil {
			return fail(err)
		}
	}
	if *tab != 0 {
		if err := printTab(*tab); err != nil {
			return fail(err)
		}
	}
	if *ext {
		if err := printExt(); err != nil {
			return fail(err)
		}
	}
	return 0
}
