// Command vltexp regenerates the tables and figures of "Vector Lane
// Threading" (ICPP 2006) on this repository's simulator.
//
// Usage:
//
//	vltexp [-scale N] [-jobs N] [-progress] [-fig 1|3|4|5|6] [-tab 1|2|3|4] [-all]
//
// Without flags it prints everything (equivalent to -all). Simulations
// fan out over the parallel experiment engine; -jobs 1 forces the legacy
// serial path and -progress reports completed/total cells on stderr.
package main

import (
	"flag"
	"fmt"
	"os"
	"sync"

	"vlt"
)

func main() {
	scale := flag.Int("scale", 1, "problem size multiplier")
	fig := flag.Int("fig", 0, "print one figure (1, 3, 4, 5 or 6)")
	tab := flag.Int("tab", 0, "print one table (1, 2, 3 or 4)")
	ext := flag.Bool("ext", false, "print the extension studies (16 lanes, phase switching)")
	jsonOut := flag.Bool("json", false, "emit every result as JSON (for plotting scripts)")
	metricsFor := flag.String("metrics", "", "dump the named workload's full metric registry and exit")
	machine := flag.String("machine", "base", "machine configuration for -metrics")
	all := flag.Bool("all", false, "print every table and figure")
	jobs := flag.Int("jobs", 0, "max concurrent simulations (0 = GOMAXPROCS, 1 = serial legacy path)")
	progress := flag.Bool("progress", false, "report completed/total simulation cells on stderr")
	flag.Parse()

	usageErr := func(format string, args ...any) {
		fmt.Fprintf(os.Stderr, "vltexp: "+format+"\n", args...)
		flag.Usage()
		os.Exit(2)
	}
	if flag.NArg() > 0 {
		usageErr("unexpected argument %q", flag.Arg(0))
	}
	validFig := map[int]bool{1: true, 3: true, 4: true, 5: true, 6: true}
	if *fig != 0 && !validFig[*fig] {
		usageErr("no figure %d (the paper's evaluation has figures 1, 3, 4, 5, 6)", *fig)
	}
	if *tab != 0 && (*tab < 1 || *tab > 4) {
		usageErr("no table %d (tables 1-4)", *tab)
	}
	if *jobs < 0 {
		usageErr("-jobs %d: want 0 (GOMAXPROCS) or a positive worker count", *jobs)
	}

	if *fig == 0 && *tab == 0 && !*ext && !*jsonOut && *metricsFor == "" {
		*all = true
	}

	eng := vlt.NewEngine(*jobs)
	if *progress {
		var mu sync.Mutex
		eng.SetProgress(func(done, total int) {
			mu.Lock()
			defer mu.Unlock()
			fmt.Fprintf(os.Stderr, "\rvltexp: %d/%d cells simulated", done, total)
			if done == total {
				fmt.Fprintln(os.Stderr)
			}
		})
	}

	die := func(err error) {
		fmt.Fprintln(os.Stderr, "vltexp:", err)
		os.Exit(1)
	}
	printFig := func(n int) {
		switch n {
		case 1:
			d, err := eng.Figure1(*scale)
			if err != nil {
				die(err)
			}
			fmt.Println(d)
		case 3:
			d, err := eng.Figure3(*scale)
			if err != nil {
				die(err)
			}
			fmt.Println(d)
		case 4:
			d, err := eng.Figure4(*scale)
			if err != nil {
				die(err)
			}
			fmt.Println(d)
		case 5:
			d, err := eng.Figure5(*scale)
			if err != nil {
				die(err)
			}
			fmt.Println(d)
		case 6:
			d, err := eng.Figure6(*scale)
			if err != nil {
				die(err)
			}
			fmt.Println(d)
		}
	}
	printTab := func(n int) {
		switch n {
		case 1:
			fmt.Println(vlt.Table1String())
		case 2:
			fmt.Println(vlt.Table2String())
		case 3:
			fmt.Println(vlt.Table3String())
		case 4:
			s, err := eng.Table4String(*scale)
			if err != nil {
				die(err)
			}
			fmt.Println(s)
		}
	}

	printExt := func() {
		d16, err := eng.Extension16Lanes(*scale)
		if err != nil {
			die(err)
		}
		fmt.Println(d16)
		dps, err := eng.ExtensionPhaseSwitching(*scale)
		if err != nil {
			die(err)
		}
		fmt.Println(dps)
	}

	if *metricsFor != "" {
		// Machine-readable registry dump: one "name value" line per
		// metric, sorted by name (the golden-metrics test's format).
		res, err := vlt.Run(*metricsFor, vlt.Machine(*machine), vlt.Options{Scale: *scale})
		if err != nil {
			die(err)
		}
		fmt.Print(res.Metrics.String())
		return
	}

	if *jsonOut {
		data, err := eng.MarshalAll(*scale)
		if err != nil {
			die(err)
		}
		fmt.Println(string(data))
		return
	}

	if *all {
		// Warm the engine's cache with every driver running concurrently;
		// the ordered printing below then reads memoized cells. The serial
		// legacy path has no cache, so it simulates while printing.
		if !eng.Serial() {
			if _, err := eng.CollectAll(*scale); err != nil {
				die(err)
			}
		}
		for _, n := range []int{1, 2, 3, 4} {
			printTab(n)
		}
		for _, n := range []int{1, 3, 4, 5, 6} {
			printFig(n)
		}
		printExt()
		return
	}
	if *fig != 0 {
		printFig(*fig)
	}
	if *tab != 0 {
		printTab(*tab)
	}
	if *ext {
		printExt()
	}
}
