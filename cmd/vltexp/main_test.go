package main

import (
	"strings"
	"testing"
)

func TestRunStaticTable(t *testing.T) {
	var out, errOut strings.Builder
	if code := run([]string{"-tab", "1"}, &out, &errOut); code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errOut.String())
	}
	if !strings.Contains(out.String(), "Table 1") {
		t.Errorf("-tab 1 output missing header:\n%s", out.String())
	}
}

func TestRunUsageErrors(t *testing.T) {
	cases := [][]string{
		{"-fig", "2"},             // the paper has no figure 2
		{"-tab", "9"},             // tables are 1-4
		{"-jobs", "-3"},           // negative worker count
		{"-audit", "sometimes"},   // not auto/on/off
		{"-tab", "1", "leftover"}, // positional args are not accepted
	}
	for _, args := range cases {
		var out, errOut strings.Builder
		if code := run(args, &out, &errOut); code != 2 {
			t.Errorf("%v: exit %d, want 2\nstderr: %s", args, code, errOut.String())
		}
		if errOut.Len() == 0 {
			t.Errorf("%v: no usage diagnostic on stderr", args)
		}
	}
}

func TestRunGuardStallDiagnostic(t *testing.T) {
	var out, errOut strings.Builder
	// A 2-cycle stall limit trips in every cell's cold start, so the
	// first simulated cell aborts the whole run with a clean diagnostic.
	code := run([]string{"-tab", "4", "-stall-limit", "2", "-jobs", "1"}, &out, &errOut)
	if code != 1 {
		t.Fatalf("exit %d, want 1\nstderr: %s", code, errOut.String())
	}
	got := errOut.String()
	for _, want := range []string{"vltexp: simulation aborted", "guard:", "machine state at failure"} {
		if !strings.Contains(got, want) {
			t.Errorf("diagnostic missing %q:\n%s", want, got)
		}
	}
	if strings.Contains(got, "goroutine") {
		t.Errorf("diagnostic leaks a raw stack trace:\n%s", got)
	}
}

func TestRunMetricsIncludesGuardScope(t *testing.T) {
	var out, errOut strings.Builder
	code := run([]string{"-metrics", "mxm", "-machine", "base", "-audit", "on"}, &out, &errOut)
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errOut.String())
	}
	got := out.String()
	for _, want := range []string{"guard.audit.enabled 1", "guard.audit.checks", "guard.stall.limit"} {
		if !strings.Contains(got, want) {
			t.Errorf("-metrics output missing %q", want)
		}
	}
}
