// Command vltrun assembles a textual program (the syntax of
// internal/asm.ParseText) and runs it on a simulated machine, printing
// cycle counts and, on request, register/memory state, a retirement
// trace, the full metric registry, or a cycle-interval time series.
//
// Usage:
//
//	vltrun [-machine base] [-threads N] [-trace] [-stats] [-json]
//	       [-sample N] [-dump sym,sym] prog.vasm
//
// Example program:
//
//	.data tbl 1 2 3 4 5 6 7 8
//	.alloc out 1
//	    movi r1, 8
//	    setvl r2, r1
//	    movi r3, &tbl
//	    vld v1, (r3)
//	    vredsum r4, v1
//	    movi r5, &out
//	    st r4, 0(r5)
//	    halt
package main
