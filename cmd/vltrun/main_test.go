package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const exampleProg = `
.data tbl 1 2 3 4 5 6 7 8
.alloc out 1
    movi r1, 8
    setvl r2, r1
    movi r3, &tbl
    vld v1, (r3)
    vredsum r4, v1
    movi r5, &out
    st r4, 0(r5)
    halt
`

func writeProg(t *testing.T) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "prog.vasm")
	if err := os.WriteFile(path, []byte(exampleProg), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestRunSmoke(t *testing.T) {
	var out, errOut strings.Builder
	code := run([]string{"-dump", "out", writeProg(t)}, &out, &errOut)
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errOut.String())
	}
	got := out.String()
	for _, want := range []string{"machine: base", "cycles:", "vector:", "out @"} {
		if !strings.Contains(got, want) {
			t.Errorf("output missing %q:\n%s", want, got)
		}
	}
	if !strings.Contains(got, ": 36") { // sum 1..8
		t.Errorf("dump missing reduction result 36:\n%s", got)
	}
}

func TestRunJSONExport(t *testing.T) {
	var out, errOut strings.Builder
	if code := run([]string{"-json", writeProg(t)}, &out, &errOut); code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errOut.String())
	}
	var res struct {
		Machine string             `json:"machine"`
		Cycles  uint64             `json:"cycles"`
		Metrics map[string]float64 `json:"metrics"`
	}
	if err := json.Unmarshal([]byte(out.String()), &res); err != nil {
		t.Fatalf("-json output is not valid JSON: %v\n%s", err, out.String())
	}
	if !strings.HasPrefix(res.Machine, "base") || res.Cycles == 0 {
		t.Errorf("bad header fields: %+v", res)
	}
	if len(res.Metrics) < 40 {
		t.Errorf("JSON export has %d metrics, want >= 40", len(res.Metrics))
	}
	for _, name := range []string{"machine.cycles", "vcl.issued", "su0.fetch.instrs", "l2.reads"} {
		if _, ok := res.Metrics[name]; !ok {
			t.Errorf("JSON metrics missing %q", name)
		}
	}
	if res.Metrics["machine.cycles"] != float64(res.Cycles) {
		t.Errorf("machine.cycles %v != cycles %d", res.Metrics["machine.cycles"], res.Cycles)
	}
}

func TestRunStatsListing(t *testing.T) {
	var out, errOut strings.Builder
	if code := run([]string{"-stats", writeProg(t)}, &out, &errOut); code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errOut.String())
	}
	got := out.String()
	for _, want := range []string{"metrics", "machine.ipc", "vcl.util.busy_pct", "vm.ops.avg_vl"} {
		if !strings.Contains(got, want) {
			t.Errorf("-stats output missing %q:\n%s", want, got)
		}
	}
}

func TestRunSampler(t *testing.T) {
	var out, errOut strings.Builder
	if code := run([]string{"-sample", "10", writeProg(t)}, &out, &errOut); code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errOut.String())
	}
	got := out.String()
	if !strings.Contains(got, "samples (every 10 cycles):") {
		t.Errorf("sampler header missing:\n%s", got)
	}
	if !strings.Contains(got, "cycle,") || !strings.Contains(got, "vcl.util.busy") {
		t.Errorf("sampler CSV missing header columns:\n%s", got)
	}
}

func TestRunBadArgs(t *testing.T) {
	var out, errOut strings.Builder
	if code := run(nil, &out, &errOut); code != 2 {
		t.Errorf("no args: exit %d, want 2", code)
	}
	errOut.Reset()
	if code := run([]string{"-machine", "nope", writeProg(t)}, &out, &errOut); code != 1 {
		t.Errorf("bad machine: exit %d, want 1", code)
	}
	if !strings.Contains(errOut.String(), "unknown machine") {
		t.Errorf("stderr missing diagnostic: %s", errOut.String())
	}
}

func TestRunGuardStallDiagnostic(t *testing.T) {
	var out, errOut strings.Builder
	code := run([]string{"-stall-limit", "2", writeProg(t)}, &out, &errOut)
	if code != 1 {
		t.Fatalf("exit %d, want 1\nstderr: %s", code, errOut.String())
	}
	got := errOut.String()
	for _, want := range []string{"vltrun: simulation aborted", "guard:", "machine state at failure"} {
		if !strings.Contains(got, want) {
			t.Errorf("diagnostic missing %q:\n%s", want, got)
		}
	}
	if strings.Contains(got, "goroutine") {
		t.Errorf("diagnostic leaks a raw stack trace:\n%s", got)
	}
}

func TestRunGuestFaultDiagnostic(t *testing.T) {
	// A misaligned scalar load faults at runtime; the diagnostic must
	// name the faulting PC and cycle instead of panicking.
	path := filepath.Join(t.TempDir(), "fault.vasm")
	src := "movi r1, 3\nld r2, 0(r1)\nhalt\n"
	if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	var out, errOut strings.Builder
	if code := run([]string{path}, &out, &errOut); code != 1 {
		t.Fatalf("exit %d, want 1\nstderr: %s", code, errOut.String())
	}
	got := errOut.String()
	for _, want := range []string{"guest program fault", "pc 1", "cycle"} {
		if !strings.Contains(got, want) {
			t.Errorf("fault diagnostic missing %q:\n%s", want, got)
		}
	}
	if strings.Contains(got, "goroutine") {
		t.Errorf("fault diagnostic leaks a raw stack trace:\n%s", got)
	}
}

func TestRunBadAuditFlag(t *testing.T) {
	var out, errOut strings.Builder
	if code := run([]string{"-audit", "sometimes", writeProg(t)}, &out, &errOut); code != 2 {
		t.Errorf("bad -audit value: exit %d, want 2", code)
	}
}
