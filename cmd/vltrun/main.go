// Command vltrun assembles a textual program (the syntax of
// internal/asm.ParseText) and runs it on a simulated machine, printing
// cycle counts and, on request, register/memory state and a retirement
// trace.
//
// Usage:
//
//	vltrun [-machine base] [-threads N] [-trace] [-dump sym,sym] prog.vasm
//
// Example program:
//
//	.data tbl 1 2 3 4 5 6 7 8
//	.alloc out 1
//	    movi r1, 8
//	    setvl r2, r1
//	    movi r3, &tbl
//	    vld v1, (r3)
//	    vredsum r4, v1
//	    movi r5, &out
//	    st r4, 0(r5)
//	    halt
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"vlt/internal/asm"
	"vlt/internal/core"
	"vlt/internal/scalar"
)

func main() {
	machine := flag.String("machine", "base", "machine: base, V2-CMP, V4-CMT, CMT, VLT-scalar, ...")
	threads := flag.Int("threads", 1, "software thread count")
	lanes := flag.Int("lanes", 8, "lane count (base machine)")
	trace := flag.Bool("trace", false, "print a retirement trace to stderr")
	pipeview := flag.Bool("pipeview", false, "print a per-instruction pipeline timeline to stderr")
	chrome := flag.String("chrometrace", "", "write a chrome://tracing JSON trace to this file")
	dump := flag.String("dump", "", "comma-separated data symbols to dump after the run")
	regs := flag.Bool("regs", false, "dump thread 0's integer registers")
	flag.Parse()

	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "vltrun: usage: vltrun [flags] prog.vasm")
		os.Exit(2)
	}
	src, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		fmt.Fprintln(os.Stderr, "vltrun:", err)
		os.Exit(1)
	}
	// Accept both binary images (vltasm output) and assembly text.
	var prog *asm.Program
	if len(src) >= 4 && string(src[:4]) == "VLTP" {
		prog, err = asm.LoadImage(src)
	} else {
		prog, err = asm.ParseText(flag.Arg(0), string(src))
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "vltrun:", err)
		os.Exit(1)
	}

	cfg, err := machineConfig(*machine, *lanes, *threads)
	if err != nil {
		fmt.Fprintln(os.Stderr, "vltrun:", err)
		os.Exit(1)
	}
	m, err := core.NewMachine(cfg, prog)
	if err != nil {
		fmt.Fprintln(os.Stderr, "vltrun:", err)
		os.Exit(1)
	}
	if *trace {
		m.SetTrace(os.Stderr)
	}
	if *pipeview {
		m.SetPipeView(os.Stderr)
	}
	var chromeFile *os.File
	var chromeTracer *core.ChromeTracer
	if *chrome != "" {
		chromeFile, err = os.Create(*chrome)
		if err != nil {
			fmt.Fprintln(os.Stderr, "vltrun:", err)
			os.Exit(1)
		}
		chromeTracer = core.NewChromeTracer(chromeFile)
		m.SetChromeTrace(chromeTracer)
	}
	res, err := m.Run()
	if chromeTracer != nil {
		if cerr := chromeTracer.Close(); cerr != nil {
			fmt.Fprintln(os.Stderr, "vltrun: trace:", cerr)
		}
		chromeFile.Close()
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "vltrun:", err)
		os.Exit(1)
	}

	fmt.Printf("machine: %s  threads: %d\n", cfg.Name, cfg.NumThreads)
	fmt.Printf("cycles:  %d   instructions: %d   IPC: %.2f\n",
		res.Cycles, res.Retired, float64(res.Retired)/float64(res.Cycles))
	if res.VecIssued > 0 {
		fmt.Printf("vector:  %d instructions, %d element ops\n", res.VecIssued, res.VecElemOps)
	}
	if *regs {
		th := m.VM().Thread(0)
		for i := 0; i < 32; i += 4 {
			fmt.Printf("r%-2d=%-16d r%-2d=%-16d r%-2d=%-16d r%-2d=%d\n",
				i, int64(th.IntRegs[i]), i+1, int64(th.IntRegs[i+1]),
				i+2, int64(th.IntRegs[i+2]), i+3, int64(th.IntRegs[i+3]))
		}
	}
	if *dump != "" {
		for _, sym := range strings.Split(*dump, ",") {
			sym = strings.TrimSpace(sym)
			addr, ok := prog.Symbols[sym]
			if !ok {
				fmt.Printf("%s: unknown symbol\n", sym)
				continue
			}
			// Dump up to the next symbol or 16 words.
			end := prog.DataEnd()
			for _, a := range prog.Symbols {
				if a > addr && a < end {
					end = a
				}
			}
			n := int((end - addr) / 8)
			if n > 16 {
				n = 16
			}
			fmt.Printf("%s @%#x:", sym, addr)
			for i := 0; i < n; i++ {
				fmt.Printf(" %d", m.VM().Mem.MustRead(addr+uint64(i)*8))
			}
			fmt.Println()
		}
	}
}

func machineConfig(name string, lanes, threads int) (core.Config, error) {
	switch name {
	case "base":
		cfg := core.Base(lanes)
		cfg.NumThreads = threads
		cfg.InitialPartitions = threads
		return cfg, nil
	case "V2-SMT":
		return withThreads(core.V2SMT(), threads), nil
	case "V2-CMP":
		return withThreads(core.V2CMP(), threads), nil
	case "V2-CMP-h":
		return withThreads(core.V2CMPh(), threads), nil
	case "V4-SMT":
		return withThreads(core.V4SMT(), threads), nil
	case "V4-CMT":
		return withThreads(core.V4CMT(), threads), nil
	case "V4-CMP":
		return withThreads(core.V4CMP(), threads), nil
	case "V4-CMP-h":
		return withThreads(core.V4CMPh(), threads), nil
	case "CMT":
		return core.CMT(threads), nil
	case "VLT-scalar":
		return core.VLTScalar(threads), nil
	case "scalar":
		// A single plain 4-way scalar core, handy for microbenchmarks.
		return core.Config{
			Name:       "scalar",
			SUs:        []scalar.Config{scalar.Config4Way()},
			NumThreads: threads,
		}, nil
	}
	return core.Config{}, fmt.Errorf("unknown machine %q", name)
}

func withThreads(cfg core.Config, threads int) core.Config {
	cfg.NumThreads = threads
	cfg.InitialPartitions = threads
	return cfg
}
