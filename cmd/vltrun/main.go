package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"runtime/debug"
	"runtime/pprof"
	"strings"

	"vlt/internal/asm"
	"vlt/internal/core"
	"vlt/internal/guard"
	"vlt/internal/report"
	"vlt/internal/runner"
	"vlt/internal/scalar"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is the testable entry point: it parses args, simulates, writes to
// stdout/stderr and returns the process exit code. A panic anywhere
// below renders as a diagnostic instead of crashing the process.
func run(args []string, stdout, stderr io.Writer) (code int) {
	defer func() {
		if r := recover(); r != nil {
			fmt.Fprint(stderr, report.Diagnose("vltrun",
				&runner.PanicError{Key: "vltrun", Value: r, Stack: debug.Stack()}))
			code = 1
		}
	}()
	fs := flag.NewFlagSet("vltrun", flag.ContinueOnError)
	fs.SetOutput(stderr)
	machine := fs.String("machine", "base", "machine: base, V2-CMP, V4-CMT, CMT, VLT-scalar, ...")
	threads := fs.Int("threads", 1, "software thread count")
	lanes := fs.Int("lanes", 8, "lane count (base machine)")
	trace := fs.Bool("trace", false, "print a retirement trace to stderr")
	pipeview := fs.Bool("pipeview", false, "print a per-instruction pipeline timeline to stderr")
	chrome := fs.String("chrometrace", "", "write a chrome://tracing JSON trace to this file")
	dump := fs.String("dump", "", "comma-separated data symbols to dump after the run")
	regs := fs.Bool("regs", false, "dump thread 0's integer registers")
	stats := fs.Bool("stats", false, "print every registry metric after the run")
	jsonOut := fs.Bool("json", false, "emit the result as JSON (cycles plus the full metric map)")
	sample := fs.Uint64("sample", 0, "record the metric time series every N cycles and print it as CSV")
	stallLimit := fs.Uint64("stall-limit", 0, "abort when no instruction retires for N cycles (0 = default)")
	auditFlag := fs.String("audit", "auto", "invariant auditor: auto, on, off")
	cpuProfile := fs.String("cpuprofile", "", "write a CPU profile to this file")
	memProfile := fs.String("memprofile", "", "write an allocation profile to this file at exit")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	audit, err := guard.ParseAuditMode(*auditFlag)
	if err != nil {
		fmt.Fprintln(stderr, "vltrun:", err)
		return 2
	}

	if fs.NArg() != 1 {
		fmt.Fprintln(stderr, "vltrun: usage: vltrun [flags] prog.vasm")
		return 2
	}
	src, err := os.ReadFile(fs.Arg(0))
	if err != nil {
		fmt.Fprintln(stderr, "vltrun:", err)
		return 1
	}
	// Accept both binary images (vltasm output) and assembly text.
	var prog *asm.Program
	if len(src) >= 4 && string(src[:4]) == "VLTP" {
		prog, err = asm.LoadImage(src)
	} else {
		prog, err = asm.ParseText(fs.Arg(0), string(src))
	}
	if err != nil {
		fmt.Fprintln(stderr, "vltrun:", err)
		return 1
	}

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fmt.Fprintln(stderr, "vltrun: -cpuprofile:", err)
			return 1
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			fmt.Fprintln(stderr, "vltrun: -cpuprofile:", err)
			return 1
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
		}()
	}
	if *memProfile != "" {
		defer func() {
			f, err := os.Create(*memProfile)
			if err != nil {
				fmt.Fprintln(stderr, "vltrun: -memprofile:", err)
				return
			}
			defer f.Close()
			runtime.GC() // materialize the final live-heap statistics
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(stderr, "vltrun: -memprofile:", err)
			}
		}()
	}

	cfg, err := machineConfig(*machine, *lanes, *threads)
	if err != nil {
		fmt.Fprintln(stderr, "vltrun:", err)
		return 1
	}
	cfg.SampleEvery = *sample
	cfg.StallLimit = *stallLimit
	cfg.Audit = audit
	m, err := core.NewMachine(cfg, prog)
	if err != nil {
		fmt.Fprintln(stderr, "vltrun:", err)
		return 1
	}
	if *trace {
		m.SetTrace(stderr)
	}
	if *pipeview {
		m.SetPipeView(stderr)
	}
	var chromeFile *os.File
	var chromeTracer *core.ChromeTracer
	if *chrome != "" {
		chromeFile, err = os.Create(*chrome)
		if err != nil {
			fmt.Fprintln(stderr, "vltrun:", err)
			return 1
		}
		chromeTracer = core.NewChromeTracer(chromeFile)
		m.SetChromeTrace(chromeTracer)
	}
	res, err := m.Run()
	if chromeTracer != nil {
		if cerr := chromeTracer.Close(); cerr != nil {
			fmt.Fprintln(stderr, "vltrun: trace:", cerr)
		}
		chromeFile.Close()
	}
	if err != nil {
		fmt.Fprint(stderr, report.Diagnose("vltrun", err))
		return 1
	}

	snap := res.Metrics()
	if *jsonOut {
		out := struct {
			Machine string             `json:"machine"`
			Threads int                `json:"threads"`
			Cycles  uint64             `json:"cycles"`
			Retired uint64             `json:"retired"`
			Metrics map[string]float64 `json:"metrics"`
		}{cfg.Name, cfg.NumThreads, res.Cycles, res.Retired, snap.Map()}
		data, err := json.MarshalIndent(out, "", "  ")
		if err != nil {
			fmt.Fprintln(stderr, "vltrun:", err)
			return 1
		}
		fmt.Fprintln(stdout, string(data))
		return 0
	}

	// The headline lines read from the registry snapshot — the same
	// source every other export uses.
	fmt.Fprintf(stdout, "machine: %s  threads: %d\n", cfg.Name, cfg.NumThreads)
	fmt.Fprintf(stdout, "cycles:  %d   instructions: %d   IPC: %.2f\n",
		res.Cycles, res.Retired, snap.Float("machine.ipc"))
	if v := snap.Uint("vcl.issued"); v > 0 {
		fmt.Fprintf(stdout, "vector:  %d instructions, %d element ops\n",
			v, snap.Uint("vcl.elem_ops"))
	}
	if *stats {
		pairs := make([][2]string, 0, len(snap))
		for _, v := range snap {
			pairs = append(pairs, [2]string{v.Name, v.FormatValue()})
		}
		fmt.Fprint(stdout, report.Metrics("\nmetrics", pairs))
	}
	if s := res.Samples(); s != nil && s.Len() > 0 {
		fmt.Fprintf(stdout, "\nsamples (every %d cycles):\n%s", s.Interval(), s.CSV())
	}
	if *regs {
		th := m.VM().Thread(0)
		for i := 0; i < 32; i += 4 {
			fmt.Fprintf(stdout, "r%-2d=%-16d r%-2d=%-16d r%-2d=%-16d r%-2d=%d\n",
				i, int64(th.IntRegs[i]), i+1, int64(th.IntRegs[i+1]),
				i+2, int64(th.IntRegs[i+2]), i+3, int64(th.IntRegs[i+3]))
		}
	}
	if *dump != "" {
		for _, sym := range strings.Split(*dump, ",") {
			sym = strings.TrimSpace(sym)
			addr, ok := prog.Symbols[sym]
			if !ok {
				fmt.Fprintf(stdout, "%s: unknown symbol\n", sym)
				continue
			}
			// Dump up to the next symbol or 16 words.
			end := prog.DataEnd()
			for _, a := range prog.Symbols {
				if a > addr && a < end {
					end = a
				}
			}
			n := int((end - addr) / 8)
			if n > 16 {
				n = 16
			}
			fmt.Fprintf(stdout, "%s @%#x:", sym, addr)
			for i := 0; i < n; i++ {
				v, rerr := m.VM().Mem.ReadWord(addr + uint64(i)*8)
				if rerr != nil {
					fmt.Fprintf(stdout, " <%v>", rerr)
					break
				}
				fmt.Fprintf(stdout, " %d", v)
			}
			fmt.Fprintln(stdout)
		}
	}
	return 0
}

func machineConfig(name string, lanes, threads int) (core.Config, error) {
	switch name {
	case "base":
		cfg := core.Base(lanes)
		cfg.NumThreads = threads
		cfg.InitialPartitions = threads
		return cfg, nil
	case "V2-SMT":
		return withThreads(core.V2SMT(), threads), nil
	case "V2-CMP":
		return withThreads(core.V2CMP(), threads), nil
	case "V2-CMP-h":
		return withThreads(core.V2CMPh(), threads), nil
	case "V4-SMT":
		return withThreads(core.V4SMT(), threads), nil
	case "V4-CMT":
		return withThreads(core.V4CMT(), threads), nil
	case "V4-CMP":
		return withThreads(core.V4CMP(), threads), nil
	case "V4-CMP-h":
		return withThreads(core.V4CMPh(), threads), nil
	case "CMT":
		return core.CMT(threads), nil
	case "VLT-scalar":
		return core.VLTScalar(threads), nil
	case "scalar":
		// A single plain 4-way scalar core, handy for microbenchmarks.
		return core.Config{
			Name:       "scalar",
			SUs:        []scalar.Config{scalar.Config4Way()},
			NumThreads: threads,
		}, nil
	}
	return core.Config{}, fmt.Errorf("unknown machine %q", name)
}

func withThreads(cfg core.Config, threads int) core.Config {
	cfg.NumThreads = threads
	cfg.InitialPartitions = threads
	return cfg
}
