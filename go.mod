module vlt

go 1.22
