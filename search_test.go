package vlt

import (
	"reflect"
	"testing"

	"vlt/internal/core"
)

// TestSearchLanePartitionMpenc is the acceptance test for the search
// driver: on the lane-reclamation benchmark it must find a repartition
// policy at least as good as the better of the two fixed policies from
// the extension study — the program's own VLTCFG reclamation and the
// static partitioning — and the winning plan must verify functionally.
func TestSearchLanePartitionMpenc(t *testing.T) {
	reclaim, err := Run("mpenc", MachineV4CMT, Options{})
	if err != nil {
		t.Fatal(err)
	}
	static, err := Run("mpenc", MachineV4CMT, Options{NoLaneReclaim: true})
	if err != nil {
		t.Fatal(err)
	}
	res, err := SearchLanePartition("mpenc", MachineV4CMT, SearchOptions{Budget: 32})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Verified {
		t.Error("best plan not verified")
	}
	if res.DefaultCycles != reclaim.Cycles {
		t.Errorf("search baseline %d cycles != unsearched run's %d — the hook is not neutral",
			res.DefaultCycles, reclaim.Cycles)
	}
	best := reclaim.Cycles
	if static.Cycles < best {
		best = static.Cycles
	}
	if res.Best.Cycles > best {
		t.Errorf("search found %d cycles; best fixed policy is %d (reclaim %d, static %d)",
			res.Best.Cycles, best, reclaim.Cycles, static.Cycles)
	}
	if res.Simulated < 3 {
		t.Errorf("only %d runs simulated on a workload with repartition decisions", res.Simulated)
	}
}

// TestSearchDeterministic pins end-to-end facade determinism: two
// searches with the same options are deeply equal.
func TestSearchDeterministic(t *testing.T) {
	opt := SearchOptions{Budget: 12, Policy: "beam", Width: 1, Workers: 4}
	a, err := SearchLanePartition("mpenc", MachineV4CMT, opt)
	if err != nil {
		t.Fatal(err)
	}
	b, err := SearchLanePartition("mpenc", MachineV4CMT, opt)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Errorf("results differ across identical searches:\n%+v\nvs\n%+v", a, b)
	}
}

// TestForkAtDefaultIsNeutral pins the hook-site contract: installing a
// ForkAt hook that declines every override (returns 0, or echoes the
// request) must leave the run metric-identical to an unhooked machine.
func TestForkAtDefaultIsNeutral(t *testing.T) {
	baseline := buildCellMachine(t, "mpenc", MachineV4CMT)
	ref, err := baseline.Run()
	if err != nil {
		t.Fatal(err)
	}
	hooks := map[string]func(*core.Machine, core.ForkPoint) int{
		"return-zero":    func(*core.Machine, core.ForkPoint) int { return 0 },
		"echo-request":   func(_ *core.Machine, pt core.ForkPoint) int { return pt.Requested },
		"invalid-choice": func(*core.Machine, core.ForkPoint) int { return 7 }, // not a valid count: ignored
	}
	for _, name := range []string{"return-zero", "echo-request", "invalid-choice"} {
		t.Run(name, func(t *testing.T) {
			m := buildCellMachine(t, "mpenc", MachineV4CMT)
			fired := 0
			hook := hooks[name]
			m.SetForkAt(func(mm *core.Machine, pt core.ForkPoint) int {
				fired++
				return hook(mm, pt)
			})
			res, err := m.Run()
			if err != nil {
				t.Fatal(err)
			}
			if fired == 0 {
				t.Error("hook never fired on a workload with VLTCFG instructions")
			}
			diffSnapshots(t, "unhooked", "hooked", ref.Metrics(), res.Metrics())
		})
	}
}

// TestPartitionChoices pins the valid-choice enumeration the search
// branches over.
func TestPartitionChoices(t *testing.T) {
	m := buildCellMachine(t, "mpenc", MachineV4CMT) // 8 lanes, 4 threads
	if got, want := m.PartitionChoices(), []int{1, 2, 4}; !reflect.DeepEqual(got, want) {
		t.Errorf("PartitionChoices() = %v, want %v", got, want)
	}
	scalar := buildCellMachine(t, "radix", MachineCMT) // no vector unit
	if got := scalar.PartitionChoices(); got != nil {
		t.Errorf("PartitionChoices() on a scalar machine = %v, want nil", got)
	}
}
