package vlt

import (
	"fmt"
	"testing"

	"vlt/internal/core"
	"vlt/internal/stats"
)

// buildCellMachine constructs the machine for one workload/machine cell
// exactly as runCell does, but returns it unrun so tests can drive
// RunUntil and Fork directly.
func buildCellMachine(t *testing.T, w string, m Machine) *core.Machine {
	t.Helper()
	spec, err := resolveCell(w, m, Options{})
	if err != nil {
		t.Fatalf("resolve %s/%s: %v", w, m, err)
	}
	machine, err := core.NewMachine(spec.cfg, spec.w.Build(spec.params))
	if err != nil {
		t.Fatalf("build %s/%s: %v", w, m, err)
	}
	return machine
}

// diffSnapshots fails the test naming each metric that differs between
// two registry snapshots.
func diffSnapshots(t *testing.T, labelA, labelB string, a, b stats.Snapshot) {
	t.Helper()
	if len(a) != len(b) {
		t.Fatalf("metric count differs: %d %s vs %d %s", len(a), labelA, len(b), labelB)
	}
	bad := 0
	for i := range a {
		if a[i] != b[i] {
			t.Errorf("metric %s: %s %s vs %s %s",
				a[i].Name, a[i].FormatValue(), labelA, b[i].FormatValue(), labelB)
			if bad++; bad >= 20 {
				t.Fatal("too many metric diffs, stopping")
			}
		}
	}
}

// forkWorkloads picks three workloads for a machine: the lane-reclaim
// benchmark, a long-vector one and a scalar-parallel one for vector
// machines; the three scalar-parallel ones for machines without a
// vector unit.
func forkWorkloads(m Machine) []string {
	if m == MachineCMT || m == MachineVLTScalar {
		return []string{"radix", "ocean", "barnes"}
	}
	return []string{"mpenc", "mxm", "radix"}
}

// TestForkedMachineMatchesParent is the differential test behind machine
// forking: a machine forked mid-run and its parent, both simulated to
// completion, must produce identical metric snapshots — any divergence
// means Fork shared mutable state or missed a field. The parent must
// also match a one-shot run of the same cell, proving RunUntil-then-Run
// is seamless.
func TestForkedMachineMatchesParent(t *testing.T) {
	machineList := Machines()
	if testing.Short() {
		machineList = []Machine{MachineV4CMT, MachineCMT, MachineVLTScalar}
	}
	for _, m := range machineList {
		wls := forkWorkloads(m)
		if testing.Short() {
			wls = wls[:1]
		}
		for _, w := range wls {
			t.Run(string(m)+"/"+w, func(t *testing.T) {
				ref := buildCellMachine(t, w, m)
				refRes, err := ref.Run()
				if err != nil {
					t.Fatalf("reference run: %v", err)
				}
				total := refRes.Cycles
				cuts := []uint64{1, total / 3, total * 9 / 10}
				if testing.Short() {
					cuts = cuts[1:2]
				}
				for _, cut := range cuts {
					t.Run(fmt.Sprintf("cut=%d", cut), func(t *testing.T) {
						parent := buildCellMachine(t, w, m)
						if err := parent.RunUntil(cut); err != nil {
							t.Fatalf("run to cycle %d: %v", cut, err)
						}
						clone := parent.Fork()
						pres, perr := parent.Run()
						cres, cerr := clone.Run()
						if perr != nil || cerr != nil {
							t.Fatalf("parent err=%v fork err=%v", perr, cerr)
						}
						diffSnapshots(t, "parent", "fork", pres.Metrics(), cres.Metrics())
						diffSnapshots(t, "one-shot", "resumed", refRes.Metrics(), pres.Metrics())
					})
				}
			})
		}
	}
}

// TestForkUnderSkip pins the interaction of forking with event-driven
// cycle skipping: forking at a cycle inside a skippable idle span must
// not change the outcome — a fork cut under the skipping scheduler and
// the same cut under VLT_NOSKIP=1 reach identical final metrics.
func TestForkUnderSkip(t *testing.T) {
	cells := []struct {
		w string
		m Machine
	}{
		{"mpenc", MachineV4CMT},
		{"mxm", MachineBase},
		{"radix", MachineVLTScalar},
	}
	if testing.Short() {
		cells = cells[:1]
	}
	for _, c := range cells {
		t.Run(c.w+"/"+string(c.m), func(t *testing.T) {
			run := func(cut uint64) stats.Snapshot {
				parent := buildCellMachine(t, c.w, c.m)
				if err := parent.RunUntil(cut); err != nil {
					t.Fatalf("run to cycle %d: %v", cut, err)
				}
				res, err := parent.Fork().Run()
				if err != nil {
					t.Fatalf("forked run: %v", err)
				}
				return res.Metrics()
			}
			ref := buildCellMachine(t, c.w, c.m)
			refRes, err := ref.Run()
			if err != nil {
				t.Fatalf("reference run: %v", err)
			}
			cut := refRes.Cycles / 2
			skipping := run(cut)
			t.Setenv("VLT_NOSKIP", "1")
			ticking := run(cut)
			diffSnapshots(t, "skipping", "ticking", skipping, ticking)
		})
	}
}

// TestForkCarriesSampler pins that a fork inherits the time-series
// sampler: rows recorded before the cut appear identically in parent
// and fork, and both record the same rows after it.
func TestForkCarriesSampler(t *testing.T) {
	spec, err := resolveCell("mpenc", MachineV4CMT, Options{})
	if err != nil {
		t.Fatal(err)
	}
	spec.cfg.SampleEvery = 64
	machine, err := core.NewMachine(spec.cfg, spec.w.Build(spec.params))
	if err != nil {
		t.Fatal(err)
	}
	if err := machine.RunUntil(1000); err != nil {
		t.Fatal(err)
	}
	clone := machine.Fork()
	if _, err := machine.Run(); err != nil {
		t.Fatal(err)
	}
	if _, err := clone.Run(); err != nil {
		t.Fatal(err)
	}
	p, f := machine.Sampler(), clone.Sampler()
	if p == nil || f == nil {
		t.Fatal("sampler missing after run")
	}
	if p.Len() == 0 {
		t.Fatal("no samples recorded")
	}
	if p.Len() != f.Len() {
		t.Fatalf("sample count differs: %d parent vs %d fork", p.Len(), f.Len())
	}
	for i := 0; i < p.Len(); i++ {
		pc, pr := p.Row(i)
		fc, fr := f.Row(i)
		if pc != fc {
			t.Fatalf("sample %d cycle differs: %d parent vs %d fork", i, pc, fc)
		}
		for j := range pr {
			if pr[j] != fr[j] {
				t.Fatalf("sample %d col %d differs: %v parent vs %v fork", i, j, pr[j], fr[j])
			}
		}
	}
}
