#!/usr/bin/env bash
# Tier-1 gate: vet, build, and test (race detector on) the whole module.
# CI and pre-merge checks run exactly this script.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== gofmt -l"
unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
    echo "gofmt: these files need formatting:" >&2
    echo "$unformatted" >&2
    exit 1
fi

echo "== go vet ./..."
go vet ./...

echo "== go build ./..."
go build ./...

echo "== go test -race ./... (invariant auditor forced on)"
VLT_AUDIT=on go test -race ./...

echo "== golden metrics (testdata/metrics_base_mxm.golden)"
go test -run TestGoldenMetrics .

echo "== fuzz smoke (5s per target)"
go test -run='^$' -fuzz=FuzzAssemble -fuzztime=5s ./internal/asm
go test -run='^$' -fuzz=FuzzDecode -fuzztime=5s ./internal/isa

echo "check.sh: all gates passed"
