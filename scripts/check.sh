#!/usr/bin/env bash
# Tier-1 gate: vet, build, and test (race detector on) the whole module.
# CI and pre-merge checks run exactly this script.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== gofmt -l"
unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
    echo "gofmt: these files need formatting:" >&2
    echo "$unformatted" >&2
    exit 1
fi

echo "== go vet ./..."
go vet ./...

echo "== go build ./..."
go build ./...

echo "== go test -race ./... (invariant auditor forced on)"
VLT_AUDIT=on go test -race ./...

echo "== golden metrics (testdata/metrics_base_mxm.golden)"
go test -run TestGoldenMetrics .

echo "== fuzz smoke (5s per target)"
go test -run='^$' -fuzz=FuzzAssemble -fuzztime=5s ./internal/asm
go test -run='^$' -fuzz=FuzzDecode -fuzztime=5s ./internal/isa

echo "== vltlint -docs ./... (all lint passes repo-wide + analyzer speed guard)"
# All passes must run clean: determinism rules on the core, lock
# discipline and goroutine ownership module-wide, deadline propagation
# on the serving layer, metrics-registration exhaustiveness, unused
# ignore directives, and doc.go per internal/cmd package. The run is
# timed against a 5s bound (built binary, so compile time is excluded):
# the suite only stays a per-commit gate while it stays cheap.
go build -o /tmp/vltlint.check ./cmd/vltlint
lint_start=$(date +%s%N)
/tmp/vltlint.check -docs ./...
lint_end=$(date +%s%N)
lint_ms=$(( (lint_end - lint_start) / 1000000 ))
echo "guard: full-repo lint took ${lint_ms}ms"
if [ "$lint_ms" -gt 5000 ]; then
    echo "guard: analyzer exceeded the 5000ms bound" >&2
    exit 1
fi
rm -f /tmp/vltlint.check

echo "== docs gate (CLI.md documents every cmd/* binary)"
for d in cmd/*/; do
    name=$(basename "$d")
    if ! grep -q "$name" CLI.md; then
        echo "docs gate: CLI.md does not mention $name" >&2
        exit 1
    fi
done

echo "== vltvet (all nine workload kernels must be vet clean)"
go run ./cmd/vltvet -workloads all -threads 4

echo "== vet overhead guard (BenchmarkAssemble vs BenchmarkAssembleVet)"
bench=$(go test -run '^$' -bench 'BenchmarkAssemble(Vet)?$' -benchtime 20x -count 3 ./internal/asm)
printf '%s\n' "$bench"
printf '%s\n' "$bench" | awk '
    $1 ~ /^BenchmarkAssembleVet/ { if (vmin == 0 || $3 < vmin) vmin = $3; next }
    $1 ~ /^BenchmarkAssemble/    { if (amin == 0 || $3 < amin) amin = $3 }
    END {
        if (amin == 0 || vmin == 0) {
            print "guard: missing benchmark results" > "/dev/stderr"; exit 1
        }
        ratio = vmin / amin
        printf "guard: assemble %.2fms, assemble+vet %.2fms, vet overhead %.1f%%\n", \
            amin / 1e6, vmin / 1e6, (ratio - 1) * 100
        # Measured overhead is ~8% of the parse+encode pipeline
        # (~290ns/instruction); the bound leaves room for CI noise.
        if (ratio > 1.25) {
            print "guard: vet overhead exceeds the 25% bound" > "/dev/stderr"; exit 1
        }
    }'

echo "== cycle-skip guard (BenchmarkRunBaseMXM, skipping vs VLT_NOSKIP=1)"
skipb=$(go test -run '^$' -bench '^BenchmarkRunBaseMXM$' -benchtime 30x -count 5 .)
tickb=$(VLT_NOSKIP=1 go test -run '^$' -bench '^BenchmarkRunBaseMXM$' -benchtime 30x -count 5 .)
printf '%s\n' "$skipb" | grep '^Benchmark'
printf '%s\n' "$tickb" | grep '^Benchmark' | sed 's/$/   (VLT_NOSKIP=1)/'
printf '%s\nNOSKIPMARK\n%s\n' "$skipb" "$tickb" | awk '
    /^NOSKIPMARK$/     { ticking = 1; next }
    $1 ~ /^BenchmarkRunBaseMXM/ {
        if (ticking) { t[tn++] = $3 } else { s[sn++] = $3 }
    }
    function median(a, n,    i, j, v) {
        for (i = 1; i < n; i++) {
            v = a[i]
            for (j = i - 1; j >= 0 && a[j] > v; j--) a[j+1] = a[j]
            a[j+1] = v
        }
        return a[int(n / 2)]
    }
    END {
        if (sn == 0 || tn == 0) {
            print "guard: missing benchmark results" > "/dev/stderr"; exit 1
        }
        smed = median(s, sn); tmed = median(t, tn)
        ratio = smed / tmed
        printf "guard: skipping %.2fms, ticking %.2fms, ratio %.2f (median of %d)\n", \
            smed / 1e6, tmed / 1e6, ratio, sn
        # mxm on the base machine saturates the vector unit, so there is
        # almost nothing to skip: this cell bounds the event-scheduler
        # OVERHEAD (the differential tests bound its correctness;
        # quiescence gating keeps the expected ratio ~1.0). Medians,
        # because single samples on a shared box swing ~30%; the 20%
        # headroom is CI noise, same spirit as the vet overhead guard.
        if (ratio > 1.20) {
            print "guard: event-driven skipping is slower than ticking" > "/dev/stderr"; exit 1
        }
    }'

echo "== fork overhead guard (BenchmarkFork vs BenchmarkReplayToForkPoint)"
forkb=$(go test -run '^$' -bench 'BenchmarkFork$|BenchmarkReplayToForkPoint$' -benchtime 10x -count 3 .)
printf '%s\n' "$forkb" | grep '^Benchmark'
printf '%s\n' "$forkb" | awk '
    $1 ~ /^BenchmarkReplayToForkPoint/ { if (rmin == 0 || $3 < rmin) rmin = $3; next }
    $1 ~ /^BenchmarkFork/              { if (fmin == 0 || $3 < fmin) fmin = $3 }
    END {
        if (fmin == 0 || rmin == 0) {
            print "guard: missing benchmark results" > "/dev/stderr"; exit 1
        }
        ratio = fmin / rmin
        printf "guard: fork %.2fms, replay-to-fork-point %.2fms, fork/replay %.2f\n", \
            fmin / 1e6, rmin / 1e6, ratio
        # Fork is the search driver'\''s whole value proposition: an O(state)
        # snapshot instead of re-simulating the 5000-cycle prefix. Measured
        # ~0.06x on this cell; the 0.5x bound only trips if Fork degrades
        # to the same order as replay (e.g. an accidental deep copy of the
        # program or a per-uop re-simulation sneaking in).
        if (ratio > 0.5) {
            print "guard: forking costs more than half a prefix replay" > "/dev/stderr"; exit 1
        }
    }'

echo "== vltsearch smoke (tiny exhaustive search, JSON fields, verified replay)"
vs_out=$(go run ./cmd/vltsearch -workload mpenc -budget 6 -json)
printf '%s\n' "$vs_out" | grep -q '"workload": "mpenc"'
printf '%s\n' "$vs_out" | grep -q '"simulated": '
printf '%s\n' "$vs_out" | grep -q '"verified": true'
printf '%s\n' "$vs_out" | grep -q '"cycles"'

echo "== vltd smoke (boot with a temp -store, restart serves from disk, ETag revalidates)"
go build -o /tmp/vltd.check ./cmd/vltd
vltd_store=$(mktemp -d /tmp/vltd.store.XXXXXX)
vltd_pid=""
vltd_cleanup() {
    [ -n "$vltd_pid" ] && kill "$vltd_pid" 2>/dev/null || true
    rm -rf "$vltd_store"
}
trap vltd_cleanup EXIT

# vltd_boot [extra flags...]: boot one daemon, set vltd_pid and vltd_url.
vltd_boot() {
    /tmp/vltd.check -addr 127.0.0.1:0 -store "$vltd_store" "$@" >/tmp/vltd.check.out 2>&1 &
    vltd_pid=$!
    vltd_url=""
    for _ in $(seq 1 100); do
        vltd_url=$(sed -n 's/.*listening on \(http:\/\/[^ ]*\).*/\1/p' /tmp/vltd.check.out)
        [ -n "$vltd_url" ] && break
        sleep 0.05
    done
    if [ -z "$vltd_url" ]; then
        echo "vltd smoke: daemon never printed its listen line" >&2
        cat /tmp/vltd.check.out >&2
        exit 1
    fi
}

# vltd_stop: drained SIGTERM exit, shutdown line present.
vltd_stop() {
    kill -TERM "$vltd_pid"
    if ! wait "$vltd_pid"; then
        echo "vltd smoke: daemon did not exit cleanly on SIGTERM" >&2
        cat /tmp/vltd.check.out >&2
        exit 1
    fi
    vltd_pid=""
    grep -q "shutdown complete" /tmp/vltd.check.out
}

# Boot 1: cold store, one simulated cell spills to disk.
vltd_boot
curl -fsS "$vltd_url/healthz" | grep -q '"status":"ok"'
curl -fsS "$vltd_url/healthz?ready=1" | grep -q '"status":"ready"'
curl -fsS "$vltd_url/v1/run?workload=mxm&machine=base" | grep -q '"cycles"'
vltd_stop

# Boot 2: fresh process, empty memory cache — the store must answer
# without re-simulating, and its ETag must revalidate to a 304.
vltd_boot
run_headers=$(curl -fsSi "$vltd_url/v1/run?workload=mxm&machine=base")
printf '%s\n' "$run_headers" | grep -qi 'X-VLT-Cache: disk'
printf '%s\n' "$run_headers" | grep -q '"cycles"'
etag=$(printf '%s\n' "$run_headers" | tr -d '\r' | sed -n 's/^[Ee][Tt]ag: //p')
if [ -z "$etag" ]; then
    echo "vltd smoke: run response carried no ETag" >&2
    exit 1
fi
curl -fsSi -H "If-None-Match: $etag" "$vltd_url/v1/run?workload=mxm&machine=base" \
    | grep -q '304 Not Modified'
vltd_stop

# Boot 3: -warm promotes the stored cell before readiness; it then
# serves from memory.
vltd_boot -warm
for _ in $(seq 1 100); do
    grep -q "warmed" /tmp/vltd.check.out && break
    sleep 0.05
done
grep -q "warmed" /tmp/vltd.check.out
curl -fsSi "$vltd_url/v1/run?workload=mxm&machine=base" | grep -qi 'X-VLT-Cache: hit'
vltd_stop

trap - EXIT
rm -rf "$vltd_store"
rm -f /tmp/vltd.check.out

echo "== chaos smoke (two vltd nodes, netfault proxy at ~20% faults, sweep loses no cells)"
go build -o /tmp/vltfault.check ./cmd/vltfault
go build -o /tmp/vltsweep.check ./cmd/vltsweep
chaos_pids=()
chaos_store_peer=$(mktemp -d /tmp/vltd.chaos.peer.XXXXXX)
chaos_store_coord=$(mktemp -d /tmp/vltd.chaos.coord.XXXXXX)
chaos_cleanup() {
    for p in "${chaos_pids[@]}"; do kill "$p" 2>/dev/null || true; done
    rm -rf "$chaos_store_peer" "$chaos_store_coord"
}
trap chaos_cleanup EXIT

# scrape_line FILE SED-EXPR: poll FILE until SED-EXPR yields a match.
scrape_line() {
    local out=""
    for _ in $(seq 1 100); do
        out=$(sed -n "$2" "$1")
        [ -n "$out" ] && break
        sleep 0.05
    done
    if [ -z "$out" ]; then
        echo "chaos smoke: never found $2 in $1" >&2
        cat "$1" >&2
        exit 1
    fi
    printf '%s' "$out"
}

/tmp/vltd.check -addr 127.0.0.1:0 -store "$chaos_store_peer" >/tmp/vltd.peer.out 2>&1 &
chaos_pids+=($!)
peer_url=$(scrape_line /tmp/vltd.peer.out 's/.*listening on \(http:\/\/[^ ]*\).*/\1/p')

/tmp/vltfault.check -target "${peer_url#http://}" -drop 0.1 -inject 0.1 \
    >/tmp/vltfault.check.out 2>&1 &
chaos_pids+=($!)
proxy_addr=$(scrape_line /tmp/vltfault.check.out 's/.*proxying \([^ ]*\) ->.*/\1/p')

/tmp/vltd.check -addr 127.0.0.1:0 -peers "http://$proxy_addr" -store "$chaos_store_coord" \
    >/tmp/vltd.coord.out 2>&1 &
chaos_pids+=($!)
coord_url=$(scrape_line /tmp/vltd.coord.out 's/.*listening on \(http:\/\/[^ ]*\).*/\1/p')
grep -q "fleet of 1 peers" /tmp/vltd.coord.out

# Every cell must land despite the faulted peer: retries, breaker and
# local fallback absorb the chaos, the trailer proves nothing was lost.
sweep_out=$(/tmp/vltsweep.check -server "$coord_url" \
    -workloads mxm,sage -machines base,V2-CMP -retries 4)
printf '%s\n' "$sweep_out"
printf '%s\n' "$sweep_out" | grep -q "4 cells, 0 errors"

for p in "${chaos_pids[@]}"; do kill -TERM "$p"; done
for p in "${chaos_pids[@]}"; do
    if ! wait "$p"; then
        echo "chaos smoke: pid $p did not exit cleanly on SIGTERM" >&2
        tail -5 /tmp/vltd.peer.out /tmp/vltfault.check.out /tmp/vltd.coord.out >&2
        exit 1
    fi
done
chaos_pids=()
trap - EXIT
rm -rf "$chaos_store_peer" "$chaos_store_coord"
for f in /tmp/vltd.peer.out /tmp/vltfault.check.out /tmp/vltd.coord.out; do
    grep -q "shutdown complete" "$f"
done
rm -f /tmp/vltd.check /tmp/vltfault.check /tmp/vltsweep.check \
    /tmp/vltd.peer.out /tmp/vltfault.check.out /tmp/vltd.coord.out

echo "check.sh: all gates passed"
