#!/usr/bin/env bash
# Tier-1 gate: vet, build, and test (race detector on) the whole module.
# CI and pre-merge checks run exactly this script.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== go vet ./..."
go vet ./...

echo "== go build ./..."
go build ./...

echo "== go test -race ./..."
go test -race ./...

echo "check.sh: all gates passed"
