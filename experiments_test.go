package vlt

import (
	"testing"
)

// These tests encode the paper's evaluation shapes as regressions: the
// claims being reproduced are orderings and approximate factors, not
// absolute cycle counts (see EXPERIMENTS.md).

func TestFigure1Shapes(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment sweep")
	}
	data, err := Figure1(1)
	if err != nil {
		t.Fatal(err)
	}
	bySpeed := map[string][]float64{}
	for _, r := range data.Rows {
		bySpeed[r.Workload] = r.Speedup
	}
	at8 := func(w string) float64 { return bySpeed[w][len(Figure1Lanes)-1] }

	// Long-vector workloads scale strongly with lanes.
	if at8("mxm") < 5 {
		t.Errorf("mxm speedup at 8 lanes = %.2f, want >= 5 (paper ~7)", at8("mxm"))
	}
	if at8("sage") < 3.5 {
		t.Errorf("sage speedup at 8 lanes = %.2f, want >= 3.5 (paper ~5)", at8("sage"))
	}
	// Short-vector workloads flatten well below the lane count.
	for _, w := range []string{"mpenc", "trfd", "multprec", "bt"} {
		if at8(w) > 2.2 {
			t.Errorf("%s speedup at 8 lanes = %.2f, should flatten below 2.2", w, at8(w))
		}
	}
	// Scalar workloads are flat.
	for _, w := range []string{"radix", "ocean", "barnes"} {
		if s := at8(w); s < 0.9 || s > 1.2 {
			t.Errorf("%s speedup at 8 lanes = %.2f, should be ~1.0", w, s)
		}
	}
	// Monotonicity: the long-vector curves never decrease.
	for _, w := range []string{"mxm", "sage"} {
		s := bySpeed[w]
		for i := 1; i < len(s); i++ {
			if s[i] < s[i-1]*0.98 {
				t.Errorf("%s speedup not monotone: %v", w, s)
			}
		}
	}
}

func TestFigure3Shapes(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment sweep")
	}
	data, err := Figure3(1)
	if err != nil {
		t.Fatal(err)
	}
	rows := map[string]Figure3Row{}
	for _, r := range data.Rows {
		rows[r.Workload] = r
	}
	for w, r := range rows {
		// Paper: 2-thread speedups 1.14-2.15, 4-thread 1.40-2.3; our
		// substrate ranges slightly wider on trfd.
		if r.V2 < 1.1 || r.V2 > 2.4 {
			t.Errorf("%s VLT-2 speedup = %.2f, outside plausible band", w, r.V2)
		}
		if r.V4 < 1.3 || r.V4 > 3.6 {
			t.Errorf("%s VLT-4 speedup = %.2f, outside plausible band", w, r.V4)
		}
		// More threads never hurt.
		if r.V4 < r.V2*0.95 {
			t.Errorf("%s: VLT-4 (%.2f) should not trail VLT-2 (%.2f)", w, r.V4, r.V2)
		}
	}
	// bt (lowest opportunity, shortest vectors) gains least with 2 threads
	// among {bt, trfd, multprec}, as in the paper.
	if rows["bt"].V2 > rows["trfd"].V2 || rows["bt"].V2 > rows["multprec"].V2 {
		t.Errorf("bt should gain least: bt=%.2f trfd=%.2f multprec=%.2f",
			rows["bt"].V2, rows["trfd"].V2, rows["multprec"].V2)
	}
}

func TestFigure4Shapes(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment sweep")
	}
	data, err := Figure4(1)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range data.Rows {
		// VLT compresses execution: total datapath-cycles shrink.
		if r.V2.Total() >= r.Base.Total() {
			t.Errorf("%s: VLT-2 total (%d) should be below base (%d)",
				r.Workload, r.V2.Total(), r.Base.Total())
		}
		if r.V4.Total() > r.V2.Total() {
			t.Errorf("%s: VLT-4 total (%d) should not exceed VLT-2 (%d)",
				r.Workload, r.V4.Total(), r.V2.Total())
		}
		// Busy element work is invariant: the same program executes.
		if r.V2.Busy != r.Base.Busy || r.V4.Busy != r.Base.Busy {
			t.Errorf("%s: busy datapath-cycles changed: base=%d v2=%d v4=%d",
				r.Workload, r.Base.Busy, r.V2.Busy, r.V4.Busy)
		}
		// Idle time dominates the base bars for these low-DLP codes.
		idle := r.Base.AllIdle + r.Base.Stalled
		if idle*10 < r.Base.Total()*7 {
			t.Errorf("%s: base stall+idle fraction too low for a short-vector code", r.Workload)
		}
	}
}

func TestFigure5Shapes(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment sweep")
	}
	data, err := Figure5(1)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range data.Rows {
		s := r.Speedup
		// Replication beats multiplexing, but V2-SMT stays close to
		// V2-CMP (paper: "no significant difference").
		if s[MachineV2SMT] > s[MachineV2CMP]*1.05 {
			t.Errorf("%s: V2-SMT (%.2f) should not beat V2-CMP (%.2f)",
				r.Workload, s[MachineV2SMT], s[MachineV2CMP])
		}
		if s[MachineV2SMT] < s[MachineV2CMP]*0.70 {
			t.Errorf("%s: V2-SMT (%.2f) too far below V2-CMP (%.2f)",
				r.Workload, s[MachineV2SMT], s[MachineV2CMP])
		}
		// A single SMT SU cannot feed 4 vector threads (paper's key
		// Figure-5 result): V4-SMT clearly below V4-CMP.
		if s[MachineV4SMT] > s[MachineV4CMP]*0.95 {
			t.Errorf("%s: V4-SMT (%.2f) should trail V4-CMP (%.2f)",
				r.Workload, s[MachineV4SMT], s[MachineV4CMP])
		}
		// The hybrid V4-CMT approaches the fully replicated V4-CMP.
		if s[MachineV4CMT] < s[MachineV4CMP]*0.75 {
			t.Errorf("%s: V4-CMT (%.2f) too far below V4-CMP (%.2f)",
				r.Workload, s[MachineV4CMT], s[MachineV4CMP])
		}
		// V4-CMT beats V4-SMT.
		if s[MachineV4CMT] < s[MachineV4SMT] {
			t.Errorf("%s: V4-CMT (%.2f) should beat V4-SMT (%.2f)",
				r.Workload, s[MachineV4CMT], s[MachineV4SMT])
		}
		// The heterogeneous V4-CMP-h does not beat V4-CMP.
		if s[MachineV4CMPh] > s[MachineV4CMP]*1.02 {
			t.Errorf("%s: V4-CMP-h (%.2f) should not beat V4-CMP (%.2f)",
				r.Workload, s[MachineV4CMPh], s[MachineV4CMP])
		}
	}
}

func TestFigure6Shapes(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment sweep")
	}
	data, err := Figure6(1)
	if err != nil {
		t.Fatal(err)
	}
	ratios := map[string]float64{}
	for _, r := range data.Rows {
		ratios[r.Workload] = r.VLTOverCMT
	}
	// Paper: VLT about twice CMT for radix and ocean.
	if ratios["radix"] < 1.25 {
		t.Errorf("radix VLT/CMT = %.2f, want clearly > 1 (paper ~2)", ratios["radix"])
	}
	if ratios["ocean"] < 1.5 {
		t.Errorf("ocean VLT/CMT = %.2f, want >= 1.5 (paper ~2)", ratios["ocean"])
	}
	// Paper: parity on barnes.
	if r := ratios["barnes"]; r < 0.85 || r > 1.3 {
		t.Errorf("barnes VLT/CMT = %.2f, want ~1.0 (paper parity)", r)
	}
	// Ordering: barnes gains least from VLT scalar threads.
	if ratios["barnes"] > ratios["radix"] || ratios["barnes"] > ratios["ocean"] {
		t.Errorf("barnes (%.2f) should gain least: radix %.2f, ocean %.2f",
			ratios["barnes"], ratios["radix"], ratios["ocean"])
	}
}

func TestTable4MatchesPaper(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment sweep")
	}
	rows, err := Table4(1)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if r.PaperAvgVL > 0 {
			rel := (r.MeasuredAvgVL - r.PaperAvgVL) / r.PaperAvgVL
			if rel > 0.2 || rel < -0.2 {
				t.Errorf("%s: avg VL %.1f vs paper %.1f", r.Workload, r.MeasuredAvgVL, r.PaperAvgVL)
			}
		}
		diff := r.MeasuredPercentVect - r.PaperPercentVect
		if diff > 8 || diff < -8 {
			t.Errorf("%s: %%vect %.1f vs paper %.1f", r.Workload, r.MeasuredPercentVect, r.PaperPercentVect)
		}
		if r.PaperOppPct > 0 {
			od := r.MeasuredOppPct - r.PaperOppPct
			if od > 12 || od < -12 {
				t.Errorf("%s: opportunity %.1f vs paper %.1f", r.Workload, r.MeasuredOppPct, r.PaperOppPct)
			}
		}
	}
}

func TestTable2MatchesPaperExactly(t *testing.T) {
	want := map[string]float64{
		"V2-SMT": 0.8, "V4-SMT": 1.3, "V2-CMP": 12.3, "V2-CMP-h": 3.4,
		"V4-CMP": 36.8, "V4-CMP-h": 10.1, "V4-CMT": 13.8,
	}
	for _, r := range Table2() {
		w := want[r.Config]
		if d := r.OverheadPct - w; d > 0.3 || d < -0.3 {
			t.Errorf("%s overhead %.2f%%, want %.1f%%", r.Config, r.OverheadPct, w)
		}
	}
}

func TestExtension16LanesShapes(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment sweep")
	}
	data, err := Extension16Lanes(1)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range data.Rows {
		// The paper's conjecture: a wider machine leaves more lanes idle
		// for a short-vector thread, so VLT recovers at least as much.
		if r.SpeedupAt16 < r.SpeedupAt8*0.97 {
			t.Errorf("%s: VLT gain shrank on 16 lanes (%.2f vs %.2f at 8)",
				r.Workload, r.SpeedupAt16, r.SpeedupAt8)
		}
	}
}

func TestExtensionPhaseSwitchingShapes(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment sweep")
	}
	data, err := ExtensionPhaseSwitching(1)
	if err != nil {
		t.Fatal(err)
	}
	rows := map[string]ExtReclaimRow{}
	for _, r := range data.Rows {
		rows[r.Workload] = r
	}
	// mpenc's serial phase has vector work: reclaiming the lanes must pay.
	if rows["mpenc"].ReclaimSpeedup < 1.03 {
		t.Errorf("mpenc reclaim speedup = %.2f, want > 1.03", rows["mpenc"].ReclaimSpeedup)
	}
	// Workloads with scalar-only serial phases should be near-neutral
	// (the drain/synchronization overhead bounds the loss).
	for _, w := range []string{"trfd", "multprec", "bt"} {
		if s := rows[w].ReclaimSpeedup; s < 0.90 || s > 1.10 {
			t.Errorf("%s reclaim speedup = %.2f, want ~1.0 (scalar serial phase)", w, s)
		}
	}
}

// TestExperimentsDeterministic: the harness itself is deterministic —
// running the same figure twice yields identical numbers (no map-order
// or allocator effects leak into results).
func TestExperimentsDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment sweep")
	}
	a, err := Figure3(1)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Figure3(1)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Rows {
		if a.Rows[i] != b.Rows[i] {
			t.Errorf("figure 3 row %d differs across runs: %+v vs %+v",
				i, a.Rows[i], b.Rows[i])
		}
	}
}
